package jobmgr

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cn/internal/archive"
	"cn/internal/dataplane"
	"cn/internal/health"
	"cn/internal/logging"
	"cn/internal/msg"
	"cn/internal/placement"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/trace"
	"cn/internal/transport"
	"cn/internal/tuplespace"
)

// SendFunc delivers a message to a node.
type SendFunc func(toNode string, m *msg.Message) error

// Config parametrizes a JobManager.
type Config struct {
	// Node is the hosting node name.
	Node string
	// MaxJobs caps concurrently hosted jobs (0 = 16).
	MaxJobs int
	// MemoryMB is the node capacity advertised in offers (the TaskManager
	// tracks actual reservations; the JobManager reports the figure).
	MemoryMB int
	// SolicitWindow bounds how long task placement solicitations wait for
	// offers (0 = 200ms).
	SolicitWindow time.Duration
	// SolicitRetries is how many times placement is retried when no
	// TaskManager offers or the chosen one rejects (0 = 3).
	SolicitRetries int
	// AssignTimeout bounds one batch-assignment round trip to a chosen
	// TaskManager, including its possible blob fetch back to this
	// JobManager (0 = DefaultAssignTimeout). It must stay well under the
	// client's call timeout (10s default) so one dead node costs a retry,
	// not the whole client call.
	AssignTimeout time.Duration
	// PlacementTTL bounds how long cached TaskManager offers back placement
	// decisions before a fresh solicitation round (0 = placement.DefaultTTL;
	// negative disables offer caching entirely).
	PlacementTTL time.Duration
	// TombstoneTTL bounds how long finished jobs linger as tombstones for
	// late message routing before eviction (0 = 5m; negative keeps them
	// forever, the pre-eviction behavior).
	TombstoneTTL time.Duration
	// HeartbeatInterval is the TaskManager beat cadence this JobManager
	// expects; it sizes the default lease windows (0 =
	// health.DefaultInterval).
	HeartbeatInterval time.Duration
	// SuspectAfter is the lease lapse that excludes a node from new
	// placements (0 = 3 × HeartbeatInterval).
	SuspectAfter time.Duration
	// DeadAfter is the lease lapse that orphans a node's tasks and triggers
	// re-placement (0 = 6 × HeartbeatInterval).
	DeadAfter time.Duration
	// MaxTaskRetries bounds how many times one task may be re-placed by the
	// recovery engine — dead-node orphan recovery, failed exec dispatch, and
	// straggler speculation all draw from the same budget (0 =
	// DefaultMaxTaskRetries; negative disables recovery entirely, the
	// pre-fault-tolerance behavior where a lost assignment fails the task).
	MaxTaskRetries int
	// CheckpointEvery is the cadence at which each hosted job's control
	// state (schedule progress, retry budgets, tuple-space contents) is
	// replicated to peer JobManagers for failover (0 = HeartbeatInterval;
	// negative disables checkpointing and adoption entirely, the
	// pre-durability behavior where a dead JobManager kills its jobs).
	CheckpointEvery time.Duration
	// Scorer overrides the placement ranking policy (nil =
	// placement.DefaultScorer{}: resident bytes, then free memory, then
	// running tasks, then the straggler penalty).
	Scorer placement.Scorer
	// StragglerAfter enables speculative execution: a running task whose
	// heartbeat progress sync has not advanced for this long gets a second
	// copy placed on another node; the first result wins and the loser is
	// cancelled (0 = disabled). The threshold must exceed the longest
	// silent compute stretch a healthy task performs, or healthy tasks will
	// be (harmlessly but wastefully) duplicated.
	StragglerAfter time.Duration
	// Logf receives diagnostic lines; nil disables logging.
	Logf func(format string, args ...any)
	// Log is the structured logger; when nil, records are bridged through
	// Logf (or discarded when that is nil too).
	Log *slog.Logger
	// Tracer records this JobManager's spans into the per-job timelines;
	// nil disables JM-side tracing (incoming spans are still collected).
	Tracer *trace.Tracer
}

// DefaultTombstoneTTL is how long finished jobs stay routable when
// Config.TombstoneTTL is zero.
const DefaultTombstoneTTL = 5 * time.Minute

// DefaultMaxTaskRetries is the per-task re-placement budget when
// Config.MaxTaskRetries is zero.
const DefaultMaxTaskRetries = 2

// DefaultAssignTimeout bounds batch-assignment round trips when
// Config.AssignTimeout is zero. It used to be hardcoded at the call site;
// slow CI environments lift it via Config so assignment dispatch never
// silently races the client's own 10s call timeout.
const DefaultAssignTimeout = 5 * time.Second

// FreeMemFunc reports the node's current free task-execution memory; the
// server wires the TaskManager's gauge in so JM offers are truthful.
type FreeMemFunc func() int

// jobState is one hosted job.
type jobState struct {
	id         string
	name       string
	clientNode string

	// queue serializes the job's event and user-message processing: the
	// endpoint delivers in arrival order and a single worker goroutine
	// drains the queue, so causally ordered messages (a task's output
	// before its completion event) are forwarded in order.
	queue *msg.Mailbox

	mu        sync.Mutex
	specs     map[string]*task.Spec
	placement map[string]string // task -> primary executing node
	// archives remembers each task's content-addressed archive reference so
	// the recovery engine can rebuild assignment items for re-placement.
	archives map[string]protocol.ArchiveRef
	// blobs holds the job's archive bytes by digest until the job finishes,
	// serving TaskManager KindFetchBlob / KindBlobChunk pulls during
	// assignment and during recovery re-placement (re-placed tasks re-fetch
	// by digest).
	blobs map[string][]byte
	// staged accumulates in-flight chunked blob uploads (client
	// KindBlobChunk pushes), keyed by uploader node + digest so two
	// clients pushing the same digest concurrently cannot corrupt each
	// other's sequence; a completed, digest-verified upload graduates
	// into blobs.
	staged     map[string]*stagedBlob
	schedule   *Schedule
	started    bool
	notified   bool
	finishedAt time.Time // set when notified turns true; drives eviction
	// idleSince is refreshed by job creation and every task-creation
	// request; an unstarted job idle past the TTL is treated as abandoned
	// (a client that timed out or died mid-composition) and evicted.
	idleSince time.Time
	taskErrs  map[string]string
	// retries counts re-placements per task (recovery + speculation),
	// bounded by Config.MaxTaskRetries.
	retries map[string]int
	// retrying marks tasks with a recovery re-placement in flight so
	// concurrent death events and dispatch failures do not double-place.
	retrying map[string]bool
	// speculative maps a task to the node running its speculative twin;
	// first result wins and the loser is cancelled.
	speculative map[string]string
	// beats is the per-task progress sync from TaskManager heartbeats; a
	// running task whose entry stops advancing past StragglerAfter is a
	// speculation candidate.
	beats map[string]*beatState

	// space is the job's coordination tuple space, hosted here so every
	// task (and the client) reaches the same space over the wire. It is
	// created with the job and closed when the job reaches a terminal
	// state, so blocked In/Rd waiters unblock with ErrClosed instead of
	// leaking. The field is immutable after creation; the Space has its
	// own lock.
	space *tuplespace.Space
	// tsOps counts completed tuple-space operations (Out, and In/Rd/InP/
	// RdP requests that reached a definitive outcome; park retries are
	// not counted).
	tsOps atomic.Int64

	// broker is the job's data-plane location table: task output key ->
	// the content-addressed location the producer advertised (and, for
	// small payloads, the inline copy). Like space it is created with the
	// job, immutable as a field, and closed at terminal state so parked
	// resolves unblock with ErrClosed.
	broker *dataplane.Broker

	// ckptSeq orders this job's peer checkpoints; peers keep the highest
	// seq seen per (origin, job). ckptDone marks the terminal tombstone as
	// sent, so finished jobs cost one multicast, not one per tick. Guarded
	// by mu.
	ckptSeq  uint64
	ckptDone bool

	// root is the job's trace identity: the context every JM-side span
	// parents to, and the context dispatched messages carry downstream.
	// Zero when the job is untraced. Set once at creation (or adoption)
	// and immutable after, so it reads without mu.
	root trace.Context
	// timeline is the job's assembled trace: JM-recorded spans plus those
	// carried in on StartJobReq and terminal TaskEvents, capped at
	// maxTimelineSpans. Guarded by mu. It rides the checkpoint so the
	// trace survives failover adoption.
	timeline []trace.Span
}

// maxTimelineSpans caps one job's assembled trace; past it new spans are
// dropped (the early spans — submit, placement — are the structural ones).
const maxTimelineSpans = 512

// addSpansLocked appends spans to the job timeline up to the cap. j.mu
// must be held.
func (j *jobState) addSpansLocked(spans ...trace.Span) {
	room := maxTimelineSpans - len(j.timeline)
	if room <= 0 {
		return
	}
	if len(spans) > room {
		spans = spans[:room]
	}
	j.timeline = append(j.timeline, spans...)
}

// beatState is one task's last observed progress sync.
type beatState struct {
	progress  uint64
	changedAt time.Time
}

// stagedBlob is one chunked archive upload in flight.
type stagedBlob struct {
	total int64
	buf   []byte
}

// JobManager hosts jobs on one node.
type JobManager struct {
	cfg     Config
	send    SendFunc
	caller  *transport.Caller
	freeMem FreeMemFunc
	dir     *placement.Directory
	monitor *health.Monitor
	log     *slog.Logger
	tracer  *trace.Tracer
	stop    chan struct{}

	mu     sync.Mutex
	jobs   map[string]*jobState
	nextID int
	closed bool
	wg     sync.WaitGroup

	// peers is the failure detector over fellow JobManagers, fed by their
	// checkpoint multicasts; a dead peer triggers adoption of its
	// checkpointed jobs. Nil when checkpointing is disabled.
	peers *health.Monitor
	// peerCkpts holds the latest checkpoint per (origin, jobID), stored
	// opaque and only decoded on adoption. Guarded by peerMu.
	peerMu    sync.Mutex
	peerCkpts map[string]map[string]*peerCheckpoint

	// parked indexes in-flight blocking tuple-space ops so a requester's
	// KindTSCancel can abort its own stale park.
	parked tsParks

	// dpStats aggregates data-plane broker counters across hosted jobs;
	// shared by every job broker this manager creates.
	dpStats dataplane.Stats
}

// jobQueueCap bounds each job's serial processing queue.
const jobQueueCap = 16384

// New creates a JobManager. The caller is used for TaskManager
// solicitations and archive uploads; freeMem supplies offer data.
func New(cfg Config, send SendFunc, caller *transport.Caller, freeMem FreeMemFunc) *JobManager {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 16
	}
	if cfg.SolicitWindow <= 0 {
		cfg.SolicitWindow = 200 * time.Millisecond
	}
	if cfg.SolicitRetries <= 0 {
		cfg.SolicitRetries = 3
	}
	if cfg.AssignTimeout <= 0 {
		cfg.AssignTimeout = DefaultAssignTimeout
	}
	if freeMem == nil {
		freeMem = func() int { return cfg.MemoryMB }
	}
	if cfg.TombstoneTTL == 0 {
		cfg.TombstoneTTL = DefaultTombstoneTTL
	}
	// A negative interval means the TaskManagers are not heartbeating at
	// all: leases must never expire or every placed node would read as
	// dead. The monitor still exists (placement's liveness gate consults
	// it) but its sweeper stays off.
	monSweep := time.Duration(0)
	if cfg.HeartbeatInterval < 0 {
		monSweep = -1
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = health.DefaultInterval
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * cfg.HeartbeatInterval
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 6 * cfg.HeartbeatInterval
	}
	if cfg.MaxTaskRetries == 0 {
		cfg.MaxTaskRetries = DefaultMaxTaskRetries
	}
	// Checkpointing follows the heartbeat cadence by default; a cluster
	// that disabled heartbeating altogether (negative interval) gets no
	// checkpoint traffic either unless it opted in explicitly.
	if cfg.CheckpointEvery == 0 {
		if monSweep < 0 {
			cfg.CheckpointEvery = -1
		} else {
			cfg.CheckpointEvery = cfg.HeartbeatInterval
		}
	}
	if cfg.Scorer == nil {
		cfg.Scorer = placement.DefaultScorer{}
	}
	jm := &JobManager{
		cfg:     cfg,
		send:    send,
		caller:  caller,
		freeMem: freeMem,
		log:     logging.Component(logging.Pick(cfg.Log, cfg.Logf), "jobmgr", cfg.Node),
		tracer:  cfg.Tracer,
		stop:    make(chan struct{}),
		jobs:    make(map[string]*jobState),
	}
	jm.monitor = health.NewMonitor(health.Config{
		SuspectAfter: cfg.SuspectAfter,
		DeadAfter:    cfg.DeadAfter,
		Sweep:        monSweep,
		Logf:         cfg.Logf,
	})
	jm.dir = placement.NewDirectory(placement.Config{
		TTL:     cfg.PlacementTTL,
		Solicit: jm.solicitOffers,
		Live:    jm.liveNodes,
	})
	if cfg.TombstoneTTL > 0 {
		jm.wg.Add(1)
		go jm.janitor()
	}
	jm.wg.Add(1)
	go jm.watchHealth()
	if cfg.StragglerAfter > 0 {
		jm.wg.Add(1)
		go jm.stragglerLoop()
	}
	if cfg.CheckpointEvery > 0 && caller != nil {
		jm.peerCkpts = make(map[string]map[string]*peerCheckpoint)
		// Peer leases renew on checkpoint arrival, so the suspect/dead
		// windows derive from the checkpoint cadence, not the heartbeat one.
		jm.peers = health.NewMonitor(health.Config{
			SuspectAfter: 3 * cfg.CheckpointEvery,
			DeadAfter:    6 * cfg.CheckpointEvery,
			Logf:         cfg.Logf,
		})
		jm.wg.Add(2)
		go jm.checkpointLoop()
		go jm.watchPeers()
	}
	return jm
}

// Health exposes the node-liveness monitor (status surfaces, tests).
func (jm *JobManager) Health() *health.Monitor { return jm.monitor }

// solicitOffers performs one multicast solicitation round over the
// TaskManager group — the placement directory's refresh path. The probe
// spec requests no memory so every live TaskManager advertises its true
// free figure; filtering happens in the planner against those figures.
func (jm *JobManager) solicitOffers() ([]protocol.TMOffer, error) {
	probe := protocol.TaskSolicitReq{Spec: &task.Spec{Name: "placement-probe", Class: "*"}}
	sm := protocol.Body(msg.KindTaskSolicit,
		msg.Address{Node: jm.cfg.Node},
		msg.Address{},
		probe)
	replies, err := jm.caller.GatherGroup(protocol.GroupTaskManagers, sm, jm.cfg.SolicitWindow)
	if err != nil {
		return nil, fmt.Errorf("jobmgr %s: solicit task managers: %w", jm.cfg.Node, err)
	}
	offers := make([]protocol.TMOffer, 0, len(replies))
	for _, r := range replies {
		var o protocol.TMOffer
		if err := protocol.Decode(r, &o); err == nil {
			offers = append(offers, o)
		}
	}
	return offers, nil
}

// PlacementStats exposes the resource directory's counters (benchmarks,
// metrics).
func (jm *JobManager) PlacementStats() placement.Stats { return jm.dir.Stats() }

// janitor evicts finished-job tombstones past the TTL so a long-lived
// JobManager's memory stops growing with its job history.
func (jm *JobManager) janitor() {
	defer jm.wg.Done()
	sweep := jm.cfg.TombstoneTTL / 4
	if sweep < 10*time.Millisecond {
		sweep = 10 * time.Millisecond
	}
	if sweep > time.Minute {
		sweep = time.Minute
	}
	ticker := time.NewTicker(sweep)
	defer ticker.Stop()
	for {
		select {
		case <-jm.stop:
			return
		case now := <-ticker.C:
			jm.evictTombstones(now)
		}
	}
}

// evictTombstones forgets finished jobs older than the tombstone TTL and
// unstarted jobs whose composition went idle past the same TTL (abandoned
// by a client that timed out or died); their queues close so the per-job
// workers exit, and their stashed archive blobs are freed with them.
func (jm *JobManager) evictTombstones(now time.Time) {
	jm.mu.Lock()
	var expired []*jobState
	abandonedNodes := make(map[*jobState]map[string]bool)
	abandonedCredits := make(map[*jobState][]reservationCredit)
	for id, j := range jm.jobs {
		j.mu.Lock()
		finished := j.notified && !j.finishedAt.IsZero() && now.Sub(j.finishedAt) >= jm.cfg.TombstoneTTL
		abandoned := !j.notified && !j.started && now.Sub(j.idleSince) >= jm.cfg.TombstoneTTL
		if finished || abandoned {
			expired = append(expired, j)
			delete(jm.jobs, id)
			if abandoned {
				abandonedNodes[j] = nodeSet(j.placement)
				abandonedCredits[j] = j.openCreditsLocked()
			}
		}
		j.mu.Unlock()
	}
	jm.mu.Unlock()
	for _, j := range expired {
		// Eviction is the last exit for a space that never saw finishJob
		// (an abandoned, never-started job); close it so its waiters and
		// tuples are freed with the record. The data-plane broker goes the
		// same way: parked resolves unblock, the location table is freed.
		j.space.Close()
		j.broker.Close()
		// An abandoned job still holds unstarted assignments (and their
		// memory reservations) on its placement nodes; cancel them before
		// the record — and with it the only route to those nodes — is
		// forgotten.
		for node := range abandonedNodes[j] {
			cm := protocol.Body(msg.KindCancelJob,
				msg.Address{Node: jm.cfg.Node, Job: j.id},
				msg.Address{Node: node, Job: j.id},
				protocol.CancelJobReq{JobID: j.id, Reason: "job abandoned"})
			if err := jm.send(node, cm); err != nil {
				jm.logf("job %s: release abandoned tasks on %s: %v", j.id, node, err)
			}
		}
		jm.creditDirectory(abandonedCredits[j])
		j.queue.Close()
		jm.logf("job %s evicted (tombstone or abandoned)", j.id)
	}
}

func (jm *JobManager) logf(format string, args ...any) {
	if jm.cfg.Logf != nil {
		jm.cfg.Logf("[jm %s] "+format, append([]any{jm.cfg.Node}, args...)...)
	}
}

// endSpan closes an active span and copies the completed span into the
// job's timeline. Inert (nil) actives no-op, so call sites need no guards.
func (jm *JobManager) endSpan(j *jobState, a *trace.Active, errText string) {
	sp, ok := a.Finish(errText)
	if !ok {
		return
	}
	j.mu.Lock()
	j.addSpansLocked(sp)
	j.mu.Unlock()
}

// JobTrace returns a presentation-sorted copy of the job's assembled span
// timeline; ok is false for unknown jobs. An empty (non-nil-ok) slice
// means the job exists but was not sampled. Finished jobs stay queryable
// through their tombstones, and adopted jobs carry their pre-failover
// spans, so one trace follows the job across managers.
func (jm *JobManager) JobTrace(jobID string) ([]trace.Span, bool) {
	jm.mu.Lock()
	j, ok := jm.jobs[jobID]
	jm.mu.Unlock()
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	out := append([]trace.Span(nil), j.timeline...)
	j.mu.Unlock()
	trace.SortSpans(out)
	return out, true
}

// ActiveJobs returns the number of hosted jobs that have not finished.
// Finished jobs are kept as tombstones so late user messages from their
// tasks still route (message handling is concurrent, so a task's final
// message can arrive after its completion event).
func (jm *JobManager) ActiveJobs() int {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.activeLocked()
}

func (jm *JobManager) activeLocked() int {
	n := 0
	for _, j := range jm.jobs {
		j.mu.Lock()
		if !j.notified {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// JobProgress reports the named job's schedule census; ok is false for
// unknown jobs. A job created but not yet started reports every registered
// task as pending. Finished jobs stay queryable through their tombstones.
func (jm *JobManager) JobProgress(jobID string) (Progress, bool) {
	jm.mu.Lock()
	j, ok := jm.jobs[jobID]
	jm.mu.Unlock()
	if !ok {
		return Progress{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var p Progress
	if j.schedule == nil {
		n := len(j.specs)
		p = Progress{Total: n, Pending: n}
	} else {
		p = j.schedule.Progress()
	}
	for _, n := range j.retries {
		p.Retried += n
	}
	p.TSOps = int(j.tsOps.Load())
	return p, true
}

// HandleSolicit answers a KindJobManagerSolicit multicast: "JobManagers
// respond to multicast requests for JobManagers if they have free resources
// and are willing to be JobManagers." Returns nil when unwilling.
func (jm *JobManager) HandleSolicit(m *msg.Message) *msg.Message {
	var req protocol.JobRequirements
	if err := protocol.Decode(m, &req); err != nil {
		jm.logf("bad jm solicit: %v", err)
		return nil
	}
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.closed || jm.activeLocked() >= jm.cfg.MaxJobs {
		return nil
	}
	free := jm.freeMem()
	if req.MinMemoryMB > 0 && free < req.MinMemoryMB {
		return nil
	}
	// Advertise live jobs only: the jobs map also holds finished-job
	// tombstones, which would overstate load and skew client selection.
	offer := protocol.JMOffer{Node: jm.cfg.Node, FreeMemoryMB: free, ActiveJobs: jm.activeLocked()}
	return m.Reply(msg.KindJobManagerOffer, msg.MustEncode(offer))
}

// HandleCreateJob processes KindCreateJob: "The Job is subsequently created
// in the selected JobManager."
func (jm *JobManager) HandleCreateJob(m *msg.Message) *msg.Message {
	var req protocol.CreateJobReq
	if err := protocol.Decode(m, &req); err != nil {
		return jm.errReply(m, fmt.Sprintf("bad create-job request: %v", err))
	}
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.closed {
		return jm.errReply(m, "job manager shut down")
	}
	if jm.activeLocked() >= jm.cfg.MaxJobs {
		return jm.errReply(m, "job manager at capacity")
	}
	jm.nextID++
	id := fmt.Sprintf("%s-job%d", jm.cfg.Node, jm.nextID)
	j := &jobState{
		id:          id,
		name:        req.Name,
		clientNode:  req.ClientNode,
		queue:       msg.NewMailbox(jobQueueCap),
		specs:       make(map[string]*task.Spec),
		placement:   make(map[string]string),
		archives:    make(map[string]protocol.ArchiveRef),
		blobs:       make(map[string][]byte),
		staged:      make(map[string]*stagedBlob),
		idleSince:   time.Now(),
		taskErrs:    make(map[string]string),
		retries:     make(map[string]int),
		retrying:    make(map[string]bool),
		speculative: make(map[string]string),
		beats:       make(map[string]*beatState),
		space:       tuplespace.New(),
	}
	j.broker = dataplane.NewBroker(&jm.dpStats)
	// Establish the job's trace identity. A traced create (the client
	// sampled at submit) makes the client's span the root; otherwise this
	// JobManager makes its own sampling decision and records an anchor
	// root span for the timeline to hang from.
	if !m.Trace.IsZero() {
		j.root = m.Trace
		if a := jm.tracer.StartSpan(j.root, "jm.create"); a != nil {
			if sp, ok := a.SetJob(id).Finish(""); ok {
				j.timeline = append(j.timeline, sp)
			}
		}
	} else if a := jm.tracer.StartRoot("jm.job", id); a != nil {
		if sp, ok := a.Finish(""); ok {
			j.root = sp.Ctx()
			j.timeline = append(j.timeline, sp)
		}
	}
	jm.jobs[id] = j
	jm.wg.Add(1)
	go jm.jobWorker(j)
	jm.log.Info("job created", "job", id, "name", req.Name, "client", req.ClientNode)
	return m.Reply(msg.KindJobCreated, msg.MustEncode(protocol.CreateJobResp{JobID: id}))
}

// errReply produces a KindJobFailed response carrying the error text, used
// as the uniform failure answer for job-scoped requests.
func (jm *JobManager) errReply(m *msg.Message, text string) *msg.Message {
	r := m.Reply(msg.KindJobFailed, msg.MustEncode(protocol.JobEvent{Failed: true, Err: text}))
	return r
}

func (jm *JobManager) job(id string) (*jobState, error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	j, ok := jm.jobs[id]
	if !ok {
		return nil, fmt.Errorf("jobmgr %s: unknown job %q", jm.cfg.Node, id)
	}
	return j, nil
}

// HandleCreateTask processes KindCreateTask — the per-task path kept for
// protocol compatibility. It is a one-element batch: the inline archive
// bytes become a content-addressed blob and the shared placement engine
// does the rest. It blocks on solicitation round trips and must run
// outside the endpoint's dispatch goroutine.
func (jm *JobManager) HandleCreateTask(m *msg.Message) *msg.Message {
	var req protocol.CreateTaskReq
	if err := protocol.Decode(m, &req); err != nil {
		return jm.errReply(m, fmt.Sprintf("bad create-task request: %v", err))
	}
	j, err := jm.job(req.JobID)
	if err != nil {
		return jm.errReply(m, err.Error())
	}
	item := protocol.TaskCreate{Spec: req.Spec}
	blobs := map[string][]byte(nil)
	if len(req.Archive) > 0 {
		digest := req.Digest
		if digest == "" {
			digest = archive.DigestBytes(req.Archive)
		}
		item.Archive = protocol.ArchiveRef{Name: req.ArchiveName, Digest: digest}
		blobs = map[string][]byte{digest: req.Archive}
	} else if req.Digest != "" {
		// Digest-only reference: the blob must already be cached on the
		// TaskManager or stashed with this JobManager by a prior request.
		item.Archive = protocol.ArchiveRef{Name: req.ArchiveName, Digest: req.Digest}
	}
	placements, err := jm.createTasks(j, []protocol.TaskCreate{item}, blobs)
	if err != nil {
		return jm.errReply(m, err.Error())
	}
	return m.Reply(msg.KindTaskAccepted, msg.MustEncode(protocol.CreateTaskResp{Placement: placements[req.Spec.Name]}))
}

// HandleCreateTasks processes KindCreateTasks: place an entire task set in
// one solicitation round, dispatching batched assignments to the chosen
// nodes in parallel. It blocks and must run outside the endpoint's
// dispatch goroutine.
func (jm *JobManager) HandleCreateTasks(m *msg.Message) *msg.Message {
	var req protocol.CreateTasksReq
	if err := protocol.Decode(m, &req); err != nil {
		return jm.errReply(m, fmt.Sprintf("bad create-tasks request: %v", err))
	}
	j, err := jm.job(req.JobID)
	if err != nil {
		return jm.errReply(m, err.Error())
	}
	if len(req.Tasks) == 0 {
		return jm.errReply(m, "create-tasks request carries no tasks")
	}
	placements, err := jm.createTasks(j, req.Tasks, req.Blobs)
	if err != nil {
		return jm.errReply(m, err.Error())
	}
	return m.Reply(msg.KindTasksAccepted, msg.MustEncode(protocol.CreateTasksResp{Placements: placements}))
}

// createTasks validates, places, and records a batch of tasks — the shared
// engine behind both the batch and the per-task wire paths.
func (jm *JobManager) createTasks(j *jobState, items []protocol.TaskCreate, blobs map[string][]byte) (map[string]string, error) {
	inBatch := make(map[string]bool, len(items))
	for _, it := range items {
		if it.Spec == nil {
			return nil, fmt.Errorf("jobmgr %s: job %s: task without a spec", jm.cfg.Node, j.id)
		}
		if err := it.Spec.Validate(); err != nil {
			return nil, err
		}
		if inBatch[it.Spec.Name] {
			return nil, fmt.Errorf("jobmgr %s: job %s: task %q appears twice in batch", jm.cfg.Node, j.id, it.Spec.Name)
		}
		inBatch[it.Spec.Name] = true
	}
	j.mu.Lock()
	j.idleSince = time.Now()
	if j.notified {
		j.mu.Unlock()
		return nil, fmt.Errorf("job %s already finished", j.id)
	}
	if j.started {
		j.mu.Unlock()
		return nil, fmt.Errorf("job %s already started", j.id)
	}
	for _, it := range items {
		if _, dup := j.specs[it.Spec.Name]; dup {
			j.mu.Unlock()
			return nil, fmt.Errorf("task %q already created", it.Spec.Name)
		}
	}
	// Stash archive bytes (each distinct digest once) so the chosen
	// TaskManagers can pull what they lack.
	for digest, raw := range blobs {
		if _, ok := j.blobs[digest]; !ok {
			j.blobs[digest] = raw
		}
	}
	j.mu.Unlock()

	pa := jm.tracer.StartSpan(j.root, "jm.place").SetJob(j.id)
	placements, err := jm.placeBatch(j, items, nil)
	if err != nil {
		jm.endSpan(j, pa, err.Error())
	} else {
		jm.endSpan(j, pa, "")
	}
	j.mu.Lock()
	j.idleSince = time.Now()
	if err != nil {
		j.mu.Unlock()
		return nil, err
	}
	// Re-check the job's state: placement ran unlocked (it blocks on
	// round trips), so a concurrent cancel/start — whose cancel fan-out
	// read the placement map before this batch was in it — or a racing
	// same-name batch may have won. Recording now would leak the batch's
	// reservations; roll them back instead.
	if j.notified || j.started {
		state := "finished"
		if j.started && !j.notified {
			state = "started"
		}
		j.mu.Unlock()
		jm.releaseBatch(j, placements, "job "+state+" during placement")
		return nil, fmt.Errorf("job %s already %s", j.id, state)
	}
	for _, it := range items {
		if _, dup := j.specs[it.Spec.Name]; dup {
			j.mu.Unlock()
			jm.releaseBatch(j, placements, "duplicate task in concurrent batch")
			return nil, fmt.Errorf("task %q already created", it.Spec.Name)
		}
	}
	for _, it := range items {
		j.specs[it.Spec.Name] = it.Spec
		j.placement[it.Spec.Name] = placements[it.Spec.Name]
		j.archives[it.Spec.Name] = it.Archive
	}
	j.mu.Unlock()
	// Start liveness leases for the hosting nodes: a node that dies before
	// its first heartbeat must still expire.
	for node := range nodeSet(placements) {
		jm.monitor.Watch(node)
	}
	jm.log.Info("tasks placed", "job", j.id, "tasks", len(items), "nodes", distinctNodes(placements))
	return placements, nil
}

func distinctNodes(placements map[string]string) int { return len(nodeSet(placements)) }

// wantsFor assembles a batch's locality wants: each item's archive digest
// sized from the job's blob table, plus every content-addressed output the
// job's data-plane broker has located — the bytes a task may pull that a
// warm node can serve from its own cache. An archive whose bytes this
// JobManager no longer holds still wants its digest (size 1): preferring
// the node that has it costs nothing and saves the re-fetch.
func (jm *JobManager) wantsFor(j *jobState, items []protocol.TaskCreate) placement.Wants {
	digests := make(map[string]int64)
	j.mu.Lock()
	for _, it := range items {
		if it.Archive.Digest == "" {
			continue
		}
		size := int64(len(j.blobs[it.Archive.Digest]))
		if size == 0 {
			size = 1
		}
		digests[it.Archive.Digest] = size
	}
	j.mu.Unlock()
	for _, l := range j.broker.Entries() {
		if l.Digest == "" {
			continue
		}
		size := l.Size
		if size <= 0 {
			size = 1
		}
		digests[l.Digest] = size
	}
	if len(digests) == 0 {
		return placement.Wants{}
	}
	return placement.Wants{Digests: digests}
}

// placeBatch places a task set: one offer round from the resource
// directory (cached when fresh), a scored two-stage plan against the
// offered figures — capacity feasibility first, then locality-aware
// ranking fed by the job's archive and data-plane digests — then parallel
// batched assignments to the chosen nodes. Rejected or unplaceable tasks
// are retried on later rounds after invalidating the offending offers.
// preExcluded nodes are never chosen — the recovery engine passes the dead
// node (its offer may still be cached) and speculation passes the
// straggler's own node.
func (jm *JobManager) placeBatch(j *jobState, items []protocol.TaskCreate, preExcluded map[string]bool) (map[string]string, error) {
	byName := make(map[string]protocol.TaskCreate, len(items))
	specs := make([]*task.Spec, len(items))
	for i, it := range items {
		byName[it.Spec.Name] = it
		specs[i] = it.Spec
	}
	wants := jm.wantsFor(j, items)
	placements := make(map[string]string, len(items))
	remaining := specs
	// Nodes whose assignment call timed out have a best-effort release in
	// flight naming this batch's tasks; retrying the same names there
	// could race the release against the retry, so they are out for the
	// rest of this batch (later batches use different names and may
	// choose them again).
	excluded := make(map[string]bool, len(preExcluded))
	for node := range preExcluded {
		excluded[node] = true
	}
	var exclMu sync.Mutex
	var lastErr error
	for attempt := 0; attempt < jm.cfg.SolicitRetries && len(remaining) > 0; attempt++ {
		offers, err := jm.dir.Offers()
		if err != nil {
			return nil, err
		}
		exclMu.Lock()
		usable := offers[:0:0]
		for _, o := range offers {
			if !excluded[o.Node] {
				usable = append(usable, o)
			}
		}
		exclMu.Unlock()
		offers = usable
		if len(offers) == 0 {
			lastErr = fmt.Errorf("jobmgr %s: no TaskManager offered to host tasks", jm.cfg.Node)
			continue
		}
		plan, unplaced, planStats := placement.PlanScored(remaining, offers, wants, jm.cfg.Scorer)
		jm.dir.NotePlan(planStats)
		if len(unplaced) > 0 {
			lastErr = placement.UnplacedError(unplaced)
			// The cached figures may undersell the cluster; force a fresh
			// round before the next attempt.
			for _, o := range offers {
				jm.dir.Invalidate(o.Node)
			}
		}

		var mu sync.Mutex
		var retry []*task.Spec
		var wg sync.WaitGroup
		for node, nodeSpecs := range plan {
			nodeItems := make([]protocol.TaskCreate, len(nodeSpecs))
			for i, sp := range nodeSpecs {
				nodeItems[i] = byName[sp.Name]
			}
			wg.Add(1)
			go func(node string, nodeItems []protocol.TaskCreate) {
				defer wg.Done()
				resp, err := jm.assignBatch(j, node, nodeItems)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					// The call failed or timed out, but the TaskManager
					// may still have accepted the batch. Before retrying
					// the items elsewhere, send a targeted best-effort
					// release so an accepted-but-unacknowledged batch
					// cannot double-book memory on two nodes.
					taskNames := make([]string, len(nodeItems))
					for i, it := range nodeItems {
						taskNames[i] = it.Spec.Name
					}
					rm := protocol.Body(msg.KindCancelJob,
						msg.Address{Node: jm.cfg.Node, Job: j.id},
						msg.Address{Node: node, Job: j.id},
						protocol.CancelJobReq{JobID: j.id, Reason: "assignment unacknowledged", Tasks: taskNames})
					if serr := jm.send(node, rm); serr != nil {
						jm.logf("job %s: release unacknowledged batch on %s: %v", j.id, node, serr)
					}
					exclMu.Lock()
					excluded[node] = true
					exclMu.Unlock()
					jm.dir.Invalidate(node)
					lastErr = fmt.Errorf("jobmgr %s: assign to %s: %w", jm.cfg.Node, node, err)
					for _, it := range nodeItems {
						retry = append(retry, it.Spec)
					}
					return
				}
				if reason, whole := resp.Rejected[protocol.BatchRejected]; whole {
					// The TaskManager could not process the batch at all
					// (e.g. a decode failure): nothing was assigned there.
					jm.dir.Invalidate(node)
					lastErr = fmt.Errorf("jobmgr %s: %s rejected batch: %s", jm.cfg.Node, node, reason)
					for _, it := range nodeItems {
						retry = append(retry, it.Spec)
					}
					return
				}
				acceptedMB, accepted := 0, 0
				for _, it := range nodeItems {
					if reason, bad := resp.Rejected[it.Spec.Name]; bad {
						lastErr = fmt.Errorf("jobmgr %s: %s rejected task %q: %s", jm.cfg.Node, node, it.Spec.Name, reason)
						retry = append(retry, it.Spec)
						continue
					}
					placements[it.Spec.Name] = node
					acceptedMB += it.Spec.Req.MemoryMB
					accepted++
				}
				if len(resp.Rejected) > 0 {
					// The node's advertised capacity was wrong; it must
					// re-offer before being chosen again.
					jm.dir.Invalidate(node)
				} else if accepted > 0 {
					jm.dir.Reserve(node, acceptedMB, accepted)
				}
			}(node, nodeItems)
		}
		wg.Wait()
		remaining = append(retry, unplaced...)
	}
	if len(remaining) > 0 {
		// Roll back what the batch did manage to reserve: a targeted
		// cancel names only this batch's tasks, so the job's previously
		// created assignments on the same nodes survive while the failed
		// batch's memory is released instead of leaking until restart.
		jm.releaseBatch(j, placements, "batch placement failed")
		names := make([]string, len(remaining))
		for i, sp := range remaining {
			names[i] = sp.Name
		}
		return nil, fmt.Errorf("jobmgr %s: placement of %v failed: %w", jm.cfg.Node, names, lastErr)
	}
	return placements, nil
}

// releaseBatch sends each node a targeted cancel for a batch's placed
// tasks, freeing their unstarted reservations without touching the job's
// other assignments, and invalidates the nodes' cached offers.
func (jm *JobManager) releaseBatch(j *jobState, placements map[string]string, reason string) {
	byNode := make(map[string][]string)
	for taskName, node := range placements {
		byNode[node] = append(byNode[node], taskName)
	}
	for node, taskNames := range byNode {
		cm := protocol.Body(msg.KindCancelJob,
			msg.Address{Node: jm.cfg.Node, Job: j.id},
			msg.Address{Node: node, Job: j.id},
			protocol.CancelJobReq{JobID: j.id, Reason: reason, Tasks: taskNames})
		if err := jm.send(node, cm); err != nil {
			jm.logf("job %s: release batch on %s (%s): %v", j.id, node, reason, err)
		}
		jm.dir.Invalidate(node)
	}
}

// reservationCredit is one freed task reservation to credit back to the
// placement directory's cached figures.
type reservationCredit struct {
	node string
	mb   int
}

// creditDirectory applies freed-reservation credits (one task each).
func (jm *JobManager) creditDirectory(credits []reservationCredit) {
	for _, c := range credits {
		if c.node != "" {
			jm.dir.Release(c.node, c.mb, 1)
		}
	}
}

// openCreditsLocked collects credits for every reservation a job still
// holds — non-terminal placed tasks plus live speculative twins — used
// when teardown (failure fan-out, cancellation, abandonment) frees them
// wholesale. j.mu must be held. A nil schedule means nothing started:
// every placed task still holds its reservation.
func (j *jobState) openCreditsLocked() []reservationCredit {
	var credits []reservationCredit
	for name, node := range j.placement {
		if j.schedule != nil {
			switch j.schedule.Status(name) {
			case StatusDone, StatusFailed, StatusCancelled:
				continue
			}
		}
		if sp := j.specs[name]; sp != nil {
			credits = append(credits, reservationCredit{node, sp.Req.MemoryMB})
		}
	}
	for name, node := range j.speculative {
		if sp := j.specs[name]; sp != nil {
			credits = append(credits, reservationCredit{node, sp.Req.MemoryMB})
		}
	}
	return credits
}

func nodeSet(placements map[string]string) map[string]bool {
	nodes := make(map[string]bool, len(placements))
	for _, n := range placements {
		nodes[n] = true
	}
	return nodes
}

// assignBatch sends one node its share of the plan and decodes the result.
func (jm *JobManager) assignBatch(j *jobState, node string, items []protocol.TaskCreate) (*protocol.AssignTasksResp, error) {
	req := protocol.AssignTasksReq{
		JobID:      j.id,
		JobManager: jm.cfg.Node,
		ClientNode: j.clientNode,
		Items:      items,
	}
	am := protocol.Body(msg.KindAssignTasks,
		msg.Address{Node: jm.cfg.Node, Job: j.id},
		msg.Address{Node: node, Job: j.id},
		req)
	// The window covers the assignment round trip plus the TaskManager's
	// possible blob fetch back to this JobManager.
	ctx, cancel := context.WithTimeout(context.Background(), jm.cfg.AssignTimeout)
	defer cancel()
	reply, err := jm.caller.Call(ctx, node, am)
	if err != nil {
		return nil, err
	}
	var resp protocol.AssignTasksResp
	if err := protocol.Decode(reply, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// HandleFetchBlob answers a TaskManager's KindFetchBlob pull with the
// job's stashed archive bytes. Digests this JobManager does not hold are
// simply absent from the reply. Blobs up to protocol.MaxInlineBlob ride
// whole; larger ones are announced with their size only and the
// TaskManager streams them chunk by chunk with KindBlobChunk, so no reply
// approaches the transport frame limit.
func (jm *JobManager) HandleFetchBlob(m *msg.Message) *msg.Message {
	var req protocol.FetchBlobReq
	if err := protocol.Decode(m, &req); err != nil {
		jm.logf("bad fetch-blob request: %v", err)
		return m.Reply(msg.KindBlobData, msg.MustEncode(protocol.FetchBlobResp{}))
	}
	out := make(map[string][]byte, len(req.Digests))
	sizes := make(map[string]int64)
	inlined := 0
	if j, err := jm.job(req.JobID); err == nil {
		j.mu.Lock()
		// The inline budget is aggregate across the whole reply: many
		// individually-small blobs must not add up past the frame limit.
		// Digests are walked in sorted order so the inline/announce split
		// is deterministic for a given request.
		ds := append([]string(nil), req.Digests...)
		sort.Strings(ds)
		for _, d := range ds {
			raw, ok := j.blobs[d]
			switch {
			case !ok:
			case len(raw) <= protocol.MaxInlineBlob && inlined+len(raw) <= protocol.MaxInlinePerMessage:
				inlined += len(raw)
				out[d] = raw
			default:
				sizes[d] = int64(len(raw))
			}
		}
		j.mu.Unlock()
	}
	return m.Reply(msg.KindBlobData, msg.MustEncode(protocol.FetchBlobResp{Blobs: out, Sizes: sizes}))
}

// HandleBlobChunk serves both directions of the chunked blob protocol: a
// client pushing one chunk of a large archive upload (Data non-empty), or
// a TaskManager pulling one chunk of a stashed blob (Data empty).
func (jm *JobManager) HandleBlobChunk(m *msg.Message) *msg.Message {
	ack := func(resp protocol.BlobChunkResp) *msg.Message {
		return m.Reply(msg.KindBlobChunkAck, msg.MustEncode(resp))
	}
	var req protocol.BlobChunkReq
	if err := protocol.Decode(m, &req); err != nil {
		jm.logf("bad blob-chunk request: %v", err)
		return ack(protocol.BlobChunkResp{Err: "bad blob-chunk request: " + err.Error()})
	}
	j, err := jm.job(req.JobID)
	if err != nil {
		return ack(protocol.BlobChunkResp{Digest: req.Digest, Err: err.Error()})
	}
	if len(req.Data) > 0 {
		return ack(jm.stageChunk(j, m.From.Node, &req))
	}
	return ack(jm.serveChunk(j, &req))
}

// stageChunk appends one pushed chunk to the uploader's staged upload.
// Staging is keyed per uploader node so concurrent clients pushing the
// same digest advance independently — whoever completes first lands the
// blob, and the other converges on the idempotent "already assembled"
// acknowledgement. Chunks must arrive in offset order (each uploader is
// sequential); an offset-0 chunk on an existing stage restarts that
// uploader's sequence (a retry after a lost ack). The completed blob is
// digest-verified before it becomes fetchable, so a corrupted upload is
// rejected at the source instead of poisoning TaskManager pulls.
func (jm *JobManager) stageChunk(j *jobState, fromNode string, req *protocol.BlobChunkReq) protocol.BlobChunkResp {
	fail := func(format string, args ...any) protocol.BlobChunkResp {
		return protocol.BlobChunkResp{Digest: req.Digest, Err: fmt.Sprintf(format, args...)}
	}
	if req.Digest == "" {
		return fail("chunk push without a digest")
	}
	if req.Total <= 0 || req.Total > protocol.MaxBlobBytes {
		return fail("blob size %d out of bounds (max %d)", req.Total, int64(protocol.MaxBlobBytes))
	}
	if req.Offset < 0 || req.Offset+int64(len(req.Data)) > req.Total {
		return fail("chunk [%d,%d) exceeds declared total %d", req.Offset, req.Offset+int64(len(req.Data)), req.Total)
	}
	stageKey := fromNode + "/" + req.Digest
	j.mu.Lock()
	defer j.mu.Unlock()
	j.idleSince = time.Now()
	if j.notified || j.blobs == nil {
		return fail("job %s already finished", j.id)
	}
	if raw, done := j.blobs[req.Digest]; done {
		// The blob is already assembled (an idempotent re-push, or a
		// concurrent uploader finished first): acknowledge completion.
		delete(j.staged, stageKey)
		return protocol.BlobChunkResp{Digest: req.Digest, Offset: int64(len(raw)), Total: int64(len(raw))}
	}
	sb := j.staged[stageKey]
	if sb == nil || req.Offset == 0 {
		if req.Offset != 0 {
			return fail("unknown upload: first chunk must start at offset 0, got %d", req.Offset)
		}
		// The declared total only bounds the upload; capacity grows with
		// the bytes actually received, so a tiny chunk declaring a huge
		// total cannot pre-allocate gigabytes.
		eager := req.Total
		if eager > protocol.BlobChunkBytes {
			eager = protocol.BlobChunkBytes
		}
		sb = &stagedBlob{total: req.Total, buf: make([]byte, 0, eager)}
		j.staged[stageKey] = sb
	}
	// Bound the job's aggregate staged bytes: abandoned partial uploads
	// under many distinct digests must not accumulate past one blob's
	// worth of memory budget.
	var stagedBytes int64
	for _, other := range j.staged {
		stagedBytes += int64(len(other.buf))
	}
	if stagedBytes+int64(len(req.Data)) > protocol.MaxBlobBytes {
		delete(j.staged, stageKey)
		return fail("job %s staged-upload budget exhausted (%d bytes in flight)", j.id, stagedBytes)
	}
	if req.Total != sb.total || req.Offset != int64(len(sb.buf)) {
		delete(j.staged, stageKey)
		return fail("out-of-order chunk at %d (have %d of %d); upload reset", req.Offset, len(sb.buf), sb.total)
	}
	sb.buf = append(sb.buf, req.Data...)
	if int64(len(sb.buf)) < sb.total {
		return protocol.BlobChunkResp{Digest: req.Digest, Offset: int64(len(sb.buf)), Total: sb.total}
	}
	delete(j.staged, stageKey)
	if got := archive.DigestBytes(sb.buf); got != req.Digest {
		return fail("reassembled blob hashes to %.12s…, not the declared %.12s…", got, req.Digest)
	}
	j.blobs[req.Digest] = sb.buf
	jm.logf("job %s: staged blob %.12s… (%d bytes, chunked upload from %s)", j.id, req.Digest, sb.total, fromNode)
	return protocol.BlobChunkResp{Digest: req.Digest, Offset: sb.total, Total: sb.total}
}

// serveChunk answers a TaskManager's pull for one chunk of a stashed blob.
func (jm *JobManager) serveChunk(j *jobState, req *protocol.BlobChunkReq) protocol.BlobChunkResp {
	j.mu.Lock()
	raw, ok := j.blobs[req.Digest]
	j.mu.Unlock()
	if !ok {
		return protocol.BlobChunkResp{Digest: req.Digest, Err: fmt.Sprintf("blob %.12s… not held for job %s", req.Digest, j.id)}
	}
	max := req.MaxBytes
	if max <= 0 || max > protocol.BlobChunkBytes {
		max = protocol.BlobChunkBytes
	}
	total := int64(len(raw))
	if req.Offset < 0 || req.Offset >= total {
		return protocol.BlobChunkResp{Digest: req.Digest, Total: total,
			Err: fmt.Sprintf("offset %d out of range (blob is %d bytes)", req.Offset, total)}
	}
	end := req.Offset + max
	if end > total {
		end = total
	}
	// Stored blob bytes are immutable, so the chunk may alias them.
	return protocol.BlobChunkResp{Digest: req.Digest, Offset: req.Offset, Total: total, Data: raw[req.Offset:end]}
}

// HandleStartJob processes KindStartTask from the client: build the
// dependency schedule and dispatch every ready task.
func (jm *JobManager) HandleStartJob(m *msg.Message) *msg.Message {
	var req protocol.StartJobReq
	if err := protocol.Decode(m, &req); err != nil {
		return jm.errReply(m, fmt.Sprintf("bad start request: %v", err))
	}
	j, err := jm.job(req.JobID)
	if err != nil {
		return jm.errReply(m, err.Error())
	}
	j.mu.Lock()
	if j.notified {
		j.mu.Unlock()
		return jm.errReply(m, fmt.Sprintf("job %s already finished", j.id))
	}
	if j.started {
		j.mu.Unlock()
		return jm.errReply(m, fmt.Sprintf("job %s already started", j.id))
	}
	if len(j.specs) == 0 {
		j.mu.Unlock()
		return jm.errReply(m, fmt.Sprintf("job %s has no tasks", j.id))
	}
	specs := make([]*task.Spec, 0, len(j.specs))
	if len(req.TaskNames) > 0 {
		for _, name := range req.TaskNames {
			sp, ok := j.specs[name]
			if !ok {
				j.mu.Unlock()
				return jm.errReply(m, fmt.Sprintf("job %s has no task %q", j.id, name))
			}
			specs = append(specs, sp)
		}
	} else {
		for _, sp := range j.specs {
			specs = append(specs, sp)
		}
	}
	sched, err := NewSchedule(specs)
	if err != nil {
		j.mu.Unlock()
		return jm.errReply(m, err.Error())
	}
	j.schedule = sched
	j.started = true
	// Client-side spans (api.Submit's composition steps) arrive with the
	// start request; merge them so the timeline begins at the true root.
	j.addSpansLocked(req.Spans...)
	// The stashed archive bytes are kept until the job finishes: recovery
	// re-placement needs them so a surviving TaskManager that never cached
	// the digest can still pull the blob.
	ready := sched.Ready()
	for _, name := range ready {
		if err := sched.MarkRunning(name); err != nil {
			j.mu.Unlock()
			return jm.errReply(m, err.Error())
		}
	}
	j.mu.Unlock()

	sa := jm.tracer.StartSpan(j.root, "jm.start").SetJob(j.id)
	for _, name := range ready {
		jm.execTask(j, name)
	}
	jm.endSpan(j, sa, "")
	jm.log.Info("job started", "job", j.id, "tasks", sched.Len(), "roots", len(ready))
	return m.Reply(msg.KindPong, nil)
}

// execTask dispatches one task to its TaskManager. A failed dispatch (the
// node vanished between placement and start) enters the recovery path
// instead of failing the task outright.
func (jm *JobManager) execTask(j *jobState, name string) {
	j.mu.Lock()
	node := j.placement[name]
	j.mu.Unlock()
	em := protocol.Body(msg.KindExecTask,
		msg.Address{Node: jm.cfg.Node, Job: j.id},
		msg.Address{Node: node, Job: j.id, Task: name},
		protocol.ExecTaskReq{JobID: j.id, Task: name})
	// The dispatch span's context rides the envelope so the TaskManager's
	// exec span (and its shuffle children) parent under this trace. When
	// this node has no tracer the raw root context still propagates — the
	// executing side may be recording even if this one is not.
	da := jm.tracer.StartSpan(j.root, "jm.dispatch").SetJob(j.id).SetTask(name)
	if ctx := da.Context(); !ctx.IsZero() {
		em.Trace = ctx
	} else {
		em.Trace = j.root
	}
	err := jm.send(node, em)
	if err != nil {
		jm.endSpan(j, da, err.Error())
		jm.log.Warn("task dispatch failed", "job", j.id, "task", name, "target", node, "err", err)
		jm.retryOrFail(j, name, node, fmt.Sprintf("dispatch to %s failed: %v", node, err))
		return
	}
	jm.endSpan(j, da, "")
}

// Enqueue places a job-scoped message (task lifecycle event or user
// message) on the owning job's serial queue. The job id is taken from the
// destination address so no payload decoding happens on the endpoint's
// dispatch goroutine. Unknown jobs and overflow drop the message, matching
// the fabric's at-most-once semantics.
func (jm *JobManager) Enqueue(m *msg.Message) {
	jobID := m.To.Job
	if jobID == "" {
		jobID = m.From.Job
	}
	jm.mu.Lock()
	j, ok := jm.jobs[jobID]
	jm.mu.Unlock()
	if !ok {
		jm.logf("message %s for unknown job %q dropped", m.Kind, jobID)
		return
	}
	if err := j.queue.TryPut(m); err != nil {
		jm.logf("job %s: queue full, dropping %s", j.id, m.Kind)
	}
}

// jobWorker drains one job's queue in arrival order.
func (jm *JobManager) jobWorker(j *jobState) {
	defer jm.wg.Done()
	for {
		m, err := j.queue.Get()
		if err != nil {
			return
		}
		switch m.Kind {
		case msg.KindTaskStarted, msg.KindTaskCompleted, msg.KindTaskFailed:
			jm.HandleTaskEvent(m.Kind, m)
		case msg.KindUser, msg.KindBroadcast:
			if err := jm.HandleUser(m.Kind, m); err != nil {
				jm.logf("route user message: %v", err)
			}
		default:
			jm.logf("job %s: unexpected queued kind %s", j.id, m.Kind)
		}
	}
}

// HandleTaskEvent processes lifecycle events from TaskManagers and drives
// the schedule forward.
func (jm *JobManager) HandleTaskEvent(kind msg.Kind, m *msg.Message) {
	var ev protocol.TaskEvent
	if err := protocol.Decode(m, &ev); err != nil {
		jm.logf("bad task event: %v", err)
		return
	}
	jm.onTaskEvent(kind, &ev)
}

func (jm *JobManager) onTaskEvent(kind msg.Kind, ev *protocol.TaskEvent) {
	j, err := jm.job(ev.JobID)
	if err != nil {
		jm.logf("event %s for unknown job %s", kind, ev.JobID)
		return
	}

	var toStart []string
	var cancelCopies []string // nodes hosting a losing copy of ev.Task
	var jobDone, jobFailed bool
	var credits []reservationCredit // freed reservations to credit to the directory
	forward := true
	j.mu.Lock()
	// Terminal events carry the task's drained spans (exec, shuffle
	// fetches); merge them even when the event itself turns out stale — a
	// losing twin's spans are still part of the trace.
	j.addSpansLocked(ev.Spans...)
	if j.schedule == nil || j.notified {
		j.mu.Unlock()
		// Late events for finished jobs are still relayed ("Get Messages
		// from Tasks" includes lifecycle notifications).
		jm.forwardToClient(j, kind, ev)
		return
	}
	primary := j.placement[ev.Task]
	twin := j.speculative[ev.Task]
	switch kind {
	case msg.KindTaskStarted:
		// Informational; seed the straggler baseline so a task that starts
		// and never syncs progress is still speculation-eligible.
		if j.beats[ev.Task] == nil {
			j.beats[ev.Task] = &beatState{changedAt: time.Now()}
		}
	case msg.KindTaskCompleted:
		if ev.Node != "" && ev.Node != primary && ev.Node != twin {
			// A copy this job no longer tracks (a cancelled loser, or an
			// orphan that raced its own recovery): its result is already
			// covered by the surviving copy.
			forward = false
			break
		}
		newly, cerr := j.schedule.Complete(ev.Task)
		if cerr != nil {
			// With a twin or past retries in play this is a benign
			// duplicate (the other copy won earlier); otherwise it is an
			// out-of-protocol event worth a diagnostic.
			if twin == "" && j.retries[ev.Task] == 0 {
				jm.logf("job %s: %v", j.id, cerr)
			}
			forward = false
			break
		}
		if twin != "" {
			// First result wins; cancel the losing copy.
			loser := twin
			if ev.Node == twin {
				loser = primary
			}
			j.placement[ev.Task] = ev.Node
			delete(j.speculative, ev.Task)
			if loser != "" && loser != ev.Node {
				cancelCopies = append(cancelCopies, loser)
				// The cancel frees the loser's reservation on its node.
				if sp := j.specs[ev.Task]; sp != nil {
					credits = append(credits, reservationCredit{loser, sp.Req.MemoryMB})
				}
			}
		}
		delete(j.beats, ev.Task)
		if sp := j.specs[ev.Task]; sp != nil {
			node := ev.Node
			if node == "" {
				node = primary
			}
			credits = append(credits, reservationCredit{node, sp.Req.MemoryMB})
		}
		for _, name := range newly {
			if err := j.schedule.MarkRunning(name); err == nil {
				toStart = append(toStart, name)
			}
		}
	case msg.KindTaskFailed:
		switch {
		case twin != "" && ev.Node == twin:
			// The speculative twin failed; the primary is still running.
			// The twin's node freed its reservation when the copy died.
			delete(j.speculative, ev.Task)
			if sp := j.specs[ev.Task]; sp != nil {
				credits = append(credits, reservationCredit{twin, sp.Req.MemoryMB})
			}
			forward = false
		case ev.Node != "" && ev.Node != primary:
			// Stale copy of a re-placed task (usually the cancelled loser
			// reporting "stopped"); not authoritative. Its reservation was
			// already credited when the copy was cancelled.
			forward = false
		case twin != "":
			// The primary failed but its speculative twin is still running:
			// promote the twin instead of failing the task. Reseed the
			// straggler baseline so the twin is not judged by the failed
			// primary's stale stall timestamp.
			j.placement[ev.Task] = twin
			delete(j.speculative, ev.Task)
			j.beats[ev.Task] = &beatState{changedAt: time.Now()}
			if sp := j.specs[ev.Task]; sp != nil && ev.Node != "" {
				credits = append(credits, reservationCredit{ev.Node, sp.Req.MemoryMB})
			}
			forward = false
		default:
			j.taskErrs[ev.Task] = ev.Err
			if !j.schedule.FailAny(ev.Task) {
				jm.logf("job %s: fail %q: already terminal", j.id, ev.Task)
			} else if sp := j.specs[ev.Task]; sp != nil && ev.Node != "" {
				// The TaskManager freed the reservation when the task died;
				// credit the cached offer too.
				credits = append(credits, reservationCredit{ev.Node, sp.Req.MemoryMB})
			}
		}
	}
	if j.schedule.Done() || j.schedule.Failed() {
		jobDone = true
		jobFailed = j.schedule.Failed()
		j.notified = true
		j.finishedAt = time.Now()
	}
	j.mu.Unlock()

	// Finished or cancelled copies freed memory on their nodes; credit
	// the cached offers so placements within the TTL see the capacity
	// instead of waiting out the next solicitation round.
	jm.creditDirectory(credits)
	if forward {
		jm.forwardToClient(j, kind, ev)
	}
	for _, node := range cancelCopies {
		jm.cancelCopy(j, node, ev.Task)
	}
	for _, name := range toStart {
		jm.execTask(j, name)
	}
	if jobDone {
		jm.finishJob(j, jobFailed)
	}
}

// cancelCopy sends a targeted cancel for one task copy that lost the
// first-result-wins race.
func (jm *JobManager) cancelCopy(j *jobState, node, taskName string) {
	cm := protocol.Body(msg.KindCancelJob,
		msg.Address{Node: jm.cfg.Node, Job: j.id},
		msg.Address{Node: node, Job: j.id},
		protocol.CancelJobReq{JobID: j.id, Reason: "duplicate copy lost", Tasks: []string{taskName}})
	if err := jm.send(node, cm); err != nil {
		jm.logf("job %s: cancel losing copy of %q on %s: %v", j.id, taskName, node, err)
	}
}

// finishJob cancels remaining tasks (on failure), notifies the client, and
// forgets the job.
func (jm *JobManager) finishJob(j *jobState, failed bool) {
	// The job is terminal: close its coordination space and data-plane
	// broker first so workers blocked in In/Rd or parked in a resolve — on
	// a failed job, possibly forever — unblock with ErrClosed before the
	// cancel fan-out reaches their nodes.
	j.space.Close()
	j.broker.Close()
	j.mu.Lock()
	nodes := make(map[string]bool)
	for _, n := range j.placement {
		nodes[n] = true
	}
	for _, n := range j.speculative {
		nodes[n] = true
	}
	errs := make(map[string]string, len(j.taskErrs))
	for k, v := range j.taskErrs {
		errs[k] = v
	}
	client := j.clientNode
	var credits []reservationCredit
	if failed {
		// The cancel fan-out below frees every reservation the job still
		// holds; credit the cached offers too.
		credits = j.openCreditsLocked()
	}
	// The job is terminal: its archive bytes (and any half-staged chunked
	// uploads) are no longer needed for assignment or recovery.
	j.blobs = nil
	j.staged = nil
	j.mu.Unlock()

	if failed {
		for node := range nodes {
			cm := protocol.Body(msg.KindCancelJob,
				msg.Address{Node: jm.cfg.Node, Job: j.id},
				msg.Address{Node: node, Job: j.id},
				protocol.CancelJobReq{JobID: j.id, Reason: "job failed"})
			if err := jm.send(node, cm); err != nil {
				jm.logf("job %s: cancel on %s: %v", j.id, node, err)
			}
		}
		jm.creditDirectory(credits)
	}

	kind := msg.KindJobCompleted
	var errText string
	if failed {
		kind = msg.KindJobFailed
		errText = "one or more tasks failed"
	}
	ev := protocol.JobEvent{JobID: j.id, Failed: failed, Err: errText, TaskErrs: errs}
	em := protocol.Body(kind,
		msg.Address{Node: jm.cfg.Node, Job: j.id},
		msg.Address{Node: client, Job: j.id, Task: protocol.ClientTaskName},
		ev)
	if err := jm.send(client, em); err != nil {
		jm.logf("job %s: notify client: %v", j.id, err)
	}
	// A terminal anchor span marks when the job finished; the timeline
	// stays queryable through the tombstone.
	fa := jm.tracer.StartSpan(j.root, "jm.finish").SetJob(j.id)
	jm.endSpan(j, fa, errText)
	// The job record stays as a tombstone so late user messages still route.
	jm.log.Info("job finished", "job", j.id, "failed", failed)
}

// forwardToClient relays a task lifecycle event to the owning client.
func (jm *JobManager) forwardToClient(j *jobState, kind msg.Kind, ev *protocol.TaskEvent) {
	m := protocol.Body(kind,
		msg.Address{Node: jm.cfg.Node, Job: j.id, Task: ev.Task},
		msg.Address{Node: j.clientNode, Job: j.id, Task: protocol.ClientTaskName},
		*ev)
	if err := jm.send(j.clientNode, m); err != nil {
		jm.logf("job %s: forward %s to client: %v", j.id, kind, err)
	}
}

// HandleUser routes a user message through the conduit: to the client when
// addressed to "client", to every sibling for broadcasts, otherwise to the
// hosting TaskManager of the destination task.
func (jm *JobManager) HandleUser(kind msg.Kind, m *msg.Message) error {
	var p protocol.UserPayload
	if err := protocol.Decode(m, &p); err != nil {
		return fmt.Errorf("jobmgr %s: bad user payload: %w", jm.cfg.Node, err)
	}
	j, err := jm.job(p.JobID)
	if err != nil {
		return err
	}
	if kind == msg.KindBroadcast {
		j.mu.Lock()
		targets := make(map[string]string, len(j.placement))
		for t, node := range j.placement {
			if t != p.FromTask {
				targets[t] = node
			}
		}
		j.mu.Unlock()
		for t, node := range targets {
			fp := p
			fp.ToTask = t
			fm := protocol.Body(msg.KindUser,
				m.From,
				msg.Address{Node: node, Job: j.id, Task: t},
				fp).SetHeader(protocol.HeaderRouted, "1")
			if err := jm.send(node, fm); err != nil {
				jm.logf("job %s: broadcast to %s/%s: %v", j.id, node, t, err)
			}
		}
		return nil
	}
	if p.ToTask == protocol.ClientTaskName {
		j.mu.Lock()
		client := j.clientNode
		j.mu.Unlock()
		fm := protocol.Body(msg.KindUser, m.From,
			msg.Address{Node: client, Job: j.id, Task: protocol.ClientTaskName}, p).
			SetHeader(protocol.HeaderRouted, "1")
		return jm.send(client, fm)
	}
	j.mu.Lock()
	node, ok := j.placement[p.ToTask]
	j.mu.Unlock()
	if !ok {
		return fmt.Errorf("jobmgr %s: job %s has no task %q", jm.cfg.Node, j.id, p.ToTask)
	}
	fm := protocol.Body(msg.KindUser, m.From,
		msg.Address{Node: node, Job: j.id, Task: p.ToTask}, p).
		SetHeader(protocol.HeaderRouted, "1")
	return jm.send(node, fm)
}

// HandleCancel processes a client-initiated KindCancelJob.
func (jm *JobManager) HandleCancel(m *msg.Message) *msg.Message {
	var req protocol.CancelJobReq
	if err := protocol.Decode(m, &req); err != nil {
		return jm.errReply(m, fmt.Sprintf("bad cancel request: %v", err))
	}
	j, err := jm.job(req.JobID)
	if err != nil {
		return jm.errReply(m, err.Error())
	}
	j.mu.Lock()
	// Snapshot the still-held reservations before CancelAll marks every
	// task terminal; the cancel fan-out frees them on the TaskManagers.
	credits := j.openCreditsLocked()
	if j.schedule != nil {
		j.schedule.CancelAll()
	}
	j.notified = true
	j.finishedAt = time.Now()
	j.mu.Unlock()
	jm.finishJobCancelled(j, req.Reason)
	jm.creditDirectory(credits)
	return m.Reply(msg.KindPong, nil)
}

func (jm *JobManager) finishJobCancelled(j *jobState, reason string) {
	j.space.Close()
	j.broker.Close()
	j.mu.Lock()
	nodes := make(map[string]bool)
	for _, n := range j.placement {
		nodes[n] = true
	}
	for _, n := range j.speculative {
		nodes[n] = true
	}
	j.blobs = nil
	j.staged = nil
	j.mu.Unlock()
	for node := range nodes {
		cm := protocol.Body(msg.KindCancelJob,
			msg.Address{Node: jm.cfg.Node, Job: j.id},
			msg.Address{Node: node, Job: j.id},
			protocol.CancelJobReq{JobID: j.id, Reason: reason})
		if err := jm.send(node, cm); err != nil {
			jm.logf("job %s: cancel on %s: %v", j.id, node, err)
		}
	}
	jm.logf("job %s cancelled: %s", j.id, reason)
}

// Close marks the JobManager unwilling to host further jobs and stops the
// per-job workers.
func (jm *JobManager) Close() {
	jm.mu.Lock()
	if jm.closed {
		jm.mu.Unlock()
		jm.wg.Wait()
		return
	}
	jm.closed = true
	close(jm.stop)
	for _, j := range jm.jobs {
		j.queue.Close()
		j.space.Close()
		j.broker.Close()
	}
	jm.mu.Unlock()
	jm.monitor.Close()
	if jm.peers != nil {
		jm.peers.Close()
	}
	jm.wg.Wait()
}
