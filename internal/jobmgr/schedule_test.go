package jobmgr

import (
	"testing"

	"cn/internal/task"
)

func specs(t *testing.T, defs ...[2]string) []*task.Spec {
	t.Helper()
	out := make([]*task.Spec, 0, len(defs))
	for _, d := range defs {
		s := &task.Spec{Name: d[0], Class: "c.X", Req: task.DefaultRequirements()}
		if d[1] != "" {
			for _, dep := range splitComma(d[1]) {
				s.DependsOn = append(s.DependsOn, dep)
			}
		}
		out = append(out, s)
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func TestScheduleLinearChain(t *testing.T) {
	s, err := NewSchedule(specs(t, [2]string{"a", ""}, [2]string{"b", "a"}, [2]string{"c", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Ready(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Ready = %v", got)
	}
	if err := s.MarkRunning("a"); err != nil {
		t.Fatal(err)
	}
	newly, err := s.Complete("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 1 || newly[0] != "b" {
		t.Fatalf("newly = %v", newly)
	}
	if err := s.MarkRunning("b"); err != nil {
		t.Fatal(err)
	}
	newly, err = s.Complete("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 1 || newly[0] != "c" {
		t.Fatalf("newly = %v", newly)
	}
	if s.Done() {
		t.Error("Done before c finished")
	}
	if err := s.MarkRunning("c"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Complete("c"); err != nil {
		t.Fatal(err)
	}
	if !s.Done() || s.Failed() {
		t.Errorf("Done=%v Failed=%v", s.Done(), s.Failed())
	}
}

func TestScheduleFanOutFanIn(t *testing.T) {
	s, err := NewSchedule(specs(t,
		[2]string{"split", ""},
		[2]string{"w1", "split"},
		[2]string{"w2", "split"},
		[2]string{"w3", "split"},
		[2]string{"join", "w1,w2,w3"},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("split"); err != nil {
		t.Fatal(err)
	}
	newly, err := s.Complete("split")
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 3 {
		t.Fatalf("newly after split = %v", newly)
	}
	for _, w := range newly {
		if err := s.MarkRunning(w); err != nil {
			t.Fatal(err)
		}
	}
	// Join only becomes ready after the last worker.
	for i, w := range []string{"w1", "w2", "w3"} {
		newly, err := s.Complete(w)
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 && len(newly) != 0 {
			t.Errorf("join ready early after %s: %v", w, newly)
		}
		if i == 2 && (len(newly) != 1 || newly[0] != "join") {
			t.Errorf("join not ready after last worker: %v", newly)
		}
	}
}

func TestScheduleFailCancelsRest(t *testing.T) {
	s, err := NewSchedule(specs(t,
		[2]string{"a", ""},
		[2]string{"b", "a"},
		[2]string{"c", "b"},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail("a"); err != nil {
		t.Fatal(err)
	}
	if !s.Failed() || !s.Done() {
		t.Errorf("Failed=%v Done=%v", s.Failed(), s.Done())
	}
	if s.Status("b") != StatusCancelled || s.Status("c") != StatusCancelled {
		t.Errorf("b=%v c=%v", s.Status("b"), s.Status("c"))
	}
}

func TestScheduleFailWithRunningSibling(t *testing.T) {
	s, err := NewSchedule(specs(t,
		[2]string{"w1", ""},
		[2]string{"w2", ""},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("w1"); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("w2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail("w1"); err != nil {
		t.Fatal(err)
	}
	// w2 is still running; the schedule is failed but not yet done.
	if !s.Failed() {
		t.Error("not failed")
	}
	if s.Done() {
		t.Error("done while w2 running")
	}
	if _, err := s.Complete("w2"); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Error("not done after w2 completes")
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := NewSchedule(specs(t, [2]string{"a", ""}, [2]string{"a", ""})); err == nil {
		t.Error("duplicate task accepted")
	}
	if _, err := NewSchedule(specs(t, [2]string{"a", "ghost"})); err == nil {
		t.Error("unknown dependency accepted")
	}
	s, err := NewSchedule(specs(t, [2]string{"a", ""}, [2]string{"b", "a"}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("b"); err == nil {
		t.Error("MarkRunning on pending accepted")
	}
	if _, err := s.Complete("a"); err == nil {
		t.Error("Complete on non-running accepted")
	}
	if err := s.Fail("a"); err == nil {
		t.Error("Fail on non-running accepted")
	}
}

func TestScheduleCancelAll(t *testing.T) {
	s, err := NewSchedule(specs(t, [2]string{"a", ""}, [2]string{"b", "a"}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("a"); err != nil {
		t.Fatal(err)
	}
	s.CancelAll()
	if !s.Done() || !s.Failed() {
		t.Errorf("Done=%v Failed=%v after CancelAll", s.Done(), s.Failed())
	}
	counts := s.Counts()
	if counts[StatusCancelled] != 2 {
		t.Errorf("Counts = %v", counts)
	}
}

func TestStatusString(t *testing.T) {
	if StatusRunning.String() != "running" {
		t.Errorf("StatusRunning = %q", StatusRunning)
	}
	if Status(99).String() != "Status(99)" {
		t.Errorf("unknown = %q", Status(99))
	}
}

func TestScheduleDiamond(t *testing.T) {
	s, err := NewSchedule(specs(t,
		[2]string{"top", ""},
		[2]string{"l", "top"},
		[2]string{"r", "top"},
		[2]string{"bottom", "l,r"},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("top"); err != nil {
		t.Fatal(err)
	}
	newly, err := s.Complete("top")
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 2 {
		t.Fatalf("newly = %v", newly)
	}
	if err := s.MarkRunning("l"); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("r"); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Complete("l"); err != nil || len(n) != 0 {
		t.Fatalf("after l: %v %v", n, err)
	}
	n, err := s.Complete("r")
	if err != nil {
		t.Fatal(err)
	}
	if len(n) != 1 || n[0] != "bottom" {
		t.Fatalf("after r: %v", n)
	}
}

func TestScheduleProgress(t *testing.T) {
	s, err := NewSchedule(specs(t,
		[2]string{"top", ""},
		[2]string{"l", "top"},
		[2]string{"r", "top"},
		[2]string{"bottom", "l,r"},
	))
	if err != nil {
		t.Fatal(err)
	}
	p := s.Progress()
	if p.Total != 4 || p.Ready != 1 || p.Pending != 3 {
		t.Fatalf("initial progress = %+v", p)
	}
	if err := s.MarkRunning("top"); err != nil {
		t.Fatal(err)
	}
	if p := s.Progress(); p.Running != 1 {
		t.Fatalf("running progress = %+v", p)
	}
	if _, err := s.Complete("top"); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning("l"); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail("l"); err != nil {
		t.Fatal(err)
	}
	p = s.Progress()
	if p.Done != 1 || p.Failed != 1 || p.Cancelled != 2 {
		t.Fatalf("failed progress = %+v", p)
	}
	if p.Terminal() != 4 {
		t.Fatalf("terminal = %d", p.Terminal())
	}
	if !s.Done() || !s.Failed() {
		t.Fatalf("schedule done=%v failed=%v", s.Done(), s.Failed())
	}
	sum := p.Add(p)
	if sum.Total != 8 || sum.Failed != 2 {
		t.Fatalf("sum = %+v", sum)
	}
}
