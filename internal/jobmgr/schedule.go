// Package jobmgr implements the CN JobManager: "a conduit between the
// client CN application and the Job". It creates jobs on behalf of
// clients, solicits TaskManagers for task placement, uploads archives,
// starts tasks in dependency order, routes user messages between tasks and
// the client, and collates terminal job status.
package jobmgr

import (
	"fmt"
	"sort"

	"cn/internal/task"
)

// Status is a task's scheduling state inside a job.
type Status int

// Task scheduling states.
const (
	// StatusPending means dependencies are not yet satisfied.
	StatusPending Status = iota
	// StatusReady means the task may start.
	StatusReady
	// StatusRunning means the task has been dispatched to its TaskManager.
	StatusRunning
	// StatusDone means the task completed successfully.
	StatusDone
	// StatusFailed means the task terminated with an error.
	StatusFailed
	// StatusCancelled means the task was abandoned because the job failed.
	StatusCancelled
)

var statusNames = map[Status]string{
	StatusPending:   "pending",
	StatusReady:     "ready",
	StatusRunning:   "running",
	StatusDone:      "done",
	StatusFailed:    "failed",
	StatusCancelled: "cancelled",
}

// String returns the lowercase status name.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Schedule tracks dependency-ordered execution of a job's tasks. It is not
// concurrency-safe; the owning JobManager serializes access.
type Schedule struct {
	unmet      map[string]map[string]bool // task -> unmet dependency set
	dependents map[string][]string        // task -> tasks depending on it
	state      map[string]Status
	terminal   int
	failed     bool
}

// NewSchedule builds the scheduling state for a set of task specs. All
// dependencies must reference tasks in the set and the graph must be
// acyclic (callers validate this via cnx/core; NewSchedule re-checks the
// reference integrity cheaply).
func NewSchedule(specs []*task.Spec) (*Schedule, error) {
	s := &Schedule{
		unmet:      make(map[string]map[string]bool, len(specs)),
		dependents: make(map[string][]string),
		state:      make(map[string]Status, len(specs)),
	}
	byName := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if byName[sp.Name] {
			return nil, fmt.Errorf("jobmgr: duplicate task %q", sp.Name)
		}
		byName[sp.Name] = true
	}
	for _, sp := range specs {
		unmet := make(map[string]bool, len(sp.DependsOn))
		for _, d := range sp.DependsOn {
			if !byName[d] {
				return nil, fmt.Errorf("jobmgr: task %q depends on unknown task %q", sp.Name, d)
			}
			unmet[d] = true
			s.dependents[d] = append(s.dependents[d], sp.Name)
		}
		s.unmet[sp.Name] = unmet
		if len(unmet) == 0 {
			s.state[sp.Name] = StatusReady
		} else {
			s.state[sp.Name] = StatusPending
		}
	}
	return s, nil
}

// RestoreSchedule rebuilds a schedule from a checkpointed status census:
// the dependency graph is derived from the specs, the recorded statuses
// are overlaid, and the derived state (terminal count, failure flag, unmet
// sets, ready promotion) is recomputed. Tasks absent from statuses keep
// their NewSchedule state — the checkpoint predates their start.
func RestoreSchedule(specs []*task.Spec, statuses map[string]Status) (*Schedule, error) {
	s, err := NewSchedule(specs)
	if err != nil {
		return nil, err
	}
	for name, st := range statuses {
		if _, ok := s.state[name]; !ok {
			return nil, fmt.Errorf("jobmgr: restore: status for unknown task %q", name)
		}
		s.state[name] = st
	}
	s.terminal = 0
	s.failed = false
	for name, st := range s.state {
		switch st {
		case StatusDone:
			s.terminal++
			for _, dep := range s.dependents[name] {
				delete(s.unmet[dep], name)
			}
		case StatusFailed, StatusCancelled:
			s.terminal++
			s.failed = true
		}
	}
	for name, st := range s.state {
		if st == StatusPending && len(s.unmet[name]) == 0 {
			s.state[name] = StatusReady
		}
	}
	return s, nil
}

// Len returns the number of tasks.
func (s *Schedule) Len() int { return len(s.state) }

// Status returns a task's state.
func (s *Schedule) Status(name string) Status { return s.state[name] }

// Ready returns the sorted names of tasks that may start now.
func (s *Schedule) Ready() []string {
	var out []string
	for n, st := range s.state {
		if st == StatusReady {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// MarkRunning transitions a ready task to running.
func (s *Schedule) MarkRunning(name string) error {
	if s.state[name] != StatusReady {
		return fmt.Errorf("jobmgr: task %q is %s, not ready", name, s.state[name])
	}
	s.state[name] = StatusRunning
	return nil
}

// Complete records successful termination and returns the sorted names of
// tasks that became ready as a result.
func (s *Schedule) Complete(name string) ([]string, error) {
	if st := s.state[name]; st != StatusRunning {
		return nil, fmt.Errorf("jobmgr: complete %q: state %s", name, st)
	}
	s.state[name] = StatusDone
	s.terminal++
	var newly []string
	for _, dep := range s.dependents[name] {
		if s.state[dep] != StatusPending {
			continue
		}
		delete(s.unmet[dep], name)
		if len(s.unmet[dep]) == 0 {
			s.state[dep] = StatusReady
			newly = append(newly, dep)
		}
	}
	sort.Strings(newly)
	return newly, nil
}

// Rerun moves a done task back to running so it can execute again — the
// recovery transition for a completed producer whose only data-plane output
// copy died with its node. Dependent bookkeeping needs no rewind: the first
// completion already credited the dependents, and Complete's pending-only
// guard plus idempotent unmet deletion make the re-completion's credit pass
// a no-op, so dependents are never double-released.
func (s *Schedule) Rerun(name string) bool {
	if s.state[name] != StatusDone {
		return false
	}
	s.state[name] = StatusRunning
	s.terminal--
	return true
}

// Fail records failed termination of a running task; the job is failed
// and every not-yet-terminal task is cancelled.
func (s *Schedule) Fail(name string) error {
	if st := s.state[name]; st != StatusRunning {
		return fmt.Errorf("jobmgr: fail %q: state %s", name, st)
	}
	s.FailAny(name)
	return nil
}

// FailAny records failed termination for a task in any non-terminal state
// — the recovery engine's transition for tasks whose assignment was lost
// and could not be re-placed (a pending orphan never reached running, but
// its loss is just as fatal to the job). It reports whether a transition
// happened; already-terminal tasks are left untouched.
func (s *Schedule) FailAny(name string) bool {
	st, ok := s.state[name]
	if !ok {
		return false
	}
	switch st {
	case StatusPending, StatusReady, StatusRunning:
	default:
		return false
	}
	s.state[name] = StatusFailed
	s.terminal++
	s.failed = true
	for n, other := range s.state {
		switch other {
		case StatusPending, StatusReady:
			s.state[n] = StatusCancelled
			s.terminal++
		}
	}
	return true
}

// CancelAll cancels every non-terminal task (used for client-initiated
// job cancellation). Running tasks stay running until their TaskManagers
// observe the cancellation; they are counted terminal here.
func (s *Schedule) CancelAll() {
	s.failed = true
	for n, st := range s.state {
		switch st {
		case StatusPending, StatusReady, StatusRunning:
			s.state[n] = StatusCancelled
			s.terminal++
		}
	}
}

// Done reports whether every task reached a terminal state.
func (s *Schedule) Done() bool { return s.terminal == len(s.state) }

// Failed reports whether any task failed (or the job was cancelled).
func (s *Schedule) Failed() bool { return s.failed }

// Counts returns how many tasks are in each state.
func (s *Schedule) Counts() map[Status]int {
	out := make(map[Status]int)
	for _, st := range s.state {
		out[st]++
	}
	return out
}

// Progress is a point-in-time census of a schedule's task states, the
// per-job figure status reporters (the portal's job API, cnviz) expose.
type Progress struct {
	Total     int `json:"total"`
	Pending   int `json:"pending"`
	Ready     int `json:"ready"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Retried counts recovery and speculative re-placements across the
	// job's tasks (not a schedule state: a retried task is still counted
	// once under its current state).
	Retried int `json:"retried"`
	// TSOps counts completed tuple-space operations against the job's
	// coordination space (Out plus In/Rd/InP/RdP requests that reached a
	// definitive outcome; park retries are not counted).
	TSOps int `json:"ts_ops"`
}

// Terminal returns how many tasks reached a terminal state.
func (p Progress) Terminal() int { return p.Done + p.Failed + p.Cancelled }

// Add accumulates another census (used when aggregating across jobs).
func (p Progress) Add(o Progress) Progress {
	return Progress{
		Total:     p.Total + o.Total,
		Pending:   p.Pending + o.Pending,
		Ready:     p.Ready + o.Ready,
		Running:   p.Running + o.Running,
		Done:      p.Done + o.Done,
		Failed:    p.Failed + o.Failed,
		Cancelled: p.Cancelled + o.Cancelled,
		Retried:   p.Retried + o.Retried,
		TSOps:     p.TSOps + o.TSOps,
	}
}

// Progress returns the schedule's census.
func (s *Schedule) Progress() Progress {
	p := Progress{Total: len(s.state)}
	for _, st := range s.state {
		switch st {
		case StatusPending:
			p.Pending++
		case StatusReady:
			p.Ready++
		case StatusRunning:
			p.Running++
		case StatusDone:
			p.Done++
		case StatusFailed:
			p.Failed++
		case StatusCancelled:
			p.Cancelled++
		}
	}
	return p
}
