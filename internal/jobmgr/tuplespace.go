// Tuple-space host side: each job's coordination space lives with its
// JobManager, and every task in the job (plus the client) reaches it over
// the wire through the TS_* request kinds. Blocking In/Rd requests park
// here against the space's waiters — the handler runs on its own dispatch
// goroutine, so parking never stalls the endpoint — and are answered when
// a match arrives or the park window lapses (Retry, re-issued by the
// caller). Closing the space at job termination fails all parked and
// future operations with ErrClosed.

package jobmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/tuplespace"
)

// Park-window clamps: a caller-supplied window is bounded so a malformed
// request can neither spin the handler nor park a goroutine past every
// caller's wire deadline. The upper bound stays under TSCallTimeout with
// room for the reply to travel — a park that outlives the caller's call
// would answer a dropped correlation, and for TS_IN that destroys the
// matched tuple.
const (
	minTSPark = 10 * time.Millisecond
	maxTSPark = protocol.TSCallTimeout - 2*time.Second
)

// tsPark is one parked blocking op, registered so a KindTSCancel from
// the requester can abort it: the requester gave up (cancelled task,
// cancelled client context), nobody holds the correlation anymore, and a
// tuple destructively matched after that point must go back into the
// space rather than onto the wire.
type tsPark struct {
	cancel  context.CancelFunc
	aborted atomic.Bool
}

// tsParks indexes parked ops by requester node + request message ID
// (message IDs are only unique per producing process). Server dispatch
// runs each message on its own goroutine, so a cancel can be processed
// BEFORE the op it cancels registers; such early cancels are remembered
// as tombstones the op consumes at registration.
type tsParks struct {
	mu      sync.Mutex
	m       map[string]*tsPark
	aborted map[string]time.Time
}

// tsAbortedCap bounds the early-cancel tombstone set; past it, entries
// older than any in-flight call could be are swept.
const tsAbortedCap = 1024

func tsParkKey(node string, reqID uint64) string {
	return fmt.Sprintf("%s/%d", node, reqID)
}

// add registers a park. It reports true — and marks the park aborted —
// when the requester's cancel already arrived; the caller must not wait.
func (p *tsParks) add(key string, park *tsPark) (preAborted bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = make(map[string]*tsPark)
		p.aborted = make(map[string]time.Time)
	}
	if _, ok := p.aborted[key]; ok {
		delete(p.aborted, key)
		park.aborted.Store(true)
		return true
	}
	p.m[key] = park
	return false
}

func (p *tsParks) remove(key string) {
	p.mu.Lock()
	delete(p.m, key)
	p.mu.Unlock()
}

// abort cancels a parked op on the requester's behalf. An op not (yet)
// registered leaves a tombstone so an out-of-order registration aborts
// itself immediately.
func (p *tsParks) abort(key string) {
	p.mu.Lock()
	park, ok := p.m[key]
	if !ok {
		if p.aborted == nil {
			p.aborted = make(map[string]time.Time)
		}
		p.aborted[key] = time.Now()
		if len(p.aborted) > tsAbortedCap {
			cutoff := time.Now().Add(-2 * protocol.TSCallTimeout)
			for k, at := range p.aborted {
				if at.Before(cutoff) {
					delete(p.aborted, k)
				}
			}
		}
		p.mu.Unlock()
		return
	}
	// The aborted flag must be set before the lock is released: tsOp's
	// remove-then-check runs under the same lock, so once we unlock with
	// the flag up, any wakeup that still sees its park registered is
	// guaranteed to observe the abort and put a destructively taken tuple
	// back instead of replying to the dropped correlation.
	park.aborted.Store(true)
	p.mu.Unlock()
	park.cancel()
}

// HandleTSOp processes one tuple-space request (KindTSOut, KindTSIn,
// KindTSRd, KindTSInP, KindTSRdP) against the owning job's space and
// returns the KindTSReply. Blocking kinds park the calling goroutine; the
// server must invoke this handler off the endpoint's dispatch loop.
func (jm *JobManager) HandleTSOp(m *msg.Message) *msg.Message {
	var req protocol.TSOpReq
	if err := protocol.Decode(m, &req); err != nil {
		return tsReply(m, &protocol.TSOpResp{Err: "bad tuple-space request: " + err.Error()})
	}
	j, err := jm.job(req.JobID)
	if err != nil {
		return tsReply(m, &protocol.TSOpResp{Err: err.Error()})
	}
	resp := jm.tsOp(j, m, &req)
	if resp == nil {
		return nil // abandoned park; the requester stopped listening
	}
	if resp.OK || resp.NoMatch {
		j.tsOps.Add(1)
	}
	return tsReply(m, resp)
}

func tsReply(m *msg.Message, resp *protocol.TSOpResp) *msg.Message {
	return m.Reply(msg.KindTSReply, msg.MustEncode(resp))
}

// tsOp runs one operation against the job's space. A nil response means
// the op's park was abandoned by its requester and no reply must be sent.
func (jm *JobManager) tsOp(j *jobState, m *msg.Message, req *protocol.TSOpReq) *protocol.TSOpResp {
	kind := m.Kind
	if kind == msg.KindTSOut {
		t, err := protocol.DecodeTuple(req.Fields)
		if err != nil {
			return &protocol.TSOpResp{Err: err.Error()}
		}
		if err := j.space.Out(t); err != nil {
			return tsErrResp(err)
		}
		return &protocol.TSOpResp{OK: true}
	}

	tpl, err := protocol.DecodeTemplate(req.Fields)
	if err != nil {
		return &protocol.TSOpResp{Err: err.Error()}
	}
	switch kind {
	case msg.KindTSInP, msg.KindTSRdP:
		var t tuplespace.Tuple
		if kind == msg.KindTSInP {
			t, err = j.space.InP(tpl)
		} else {
			t, err = j.space.RdP(tpl)
		}
		if err != nil {
			return tsErrResp(err)
		}
		return tsTupleResp(t)

	case msg.KindTSIn, msg.KindTSRd:
		park := time.Duration(req.ParkMS) * time.Millisecond
		if park <= 0 {
			park = protocol.TSParkWindow
		}
		park = min(max(park, minTSPark), maxTSPark)
		ctx, cancel := context.WithTimeout(context.Background(), park)
		defer cancel()
		p := &tsPark{cancel: cancel}
		key := tsParkKey(m.From.Node, m.ID)
		if jm.parked.add(key, p) {
			// The requester's cancel outran the request (dispatch is
			// per-message, unordered); don't park, don't take, don't reply.
			return nil
		}
		var t tuplespace.Tuple
		if kind == msg.KindTSIn {
			t, err = j.space.In(ctx, tpl)
		} else {
			t, err = j.space.Rd(ctx, tpl)
		}
		jm.parked.remove(key)
		if p.aborted.Load() {
			// The requester cancelled this park; nobody holds the
			// correlation. A tuple matched in the races around the abort
			// must not leave on the wire — put a destructively taken one
			// back for the live workers.
			if err == nil && kind == msg.KindTSIn {
				if oerr := j.space.Out(t); oerr == nil {
					jm.logf("job %s: returned tuple %s after cancelled park from %s", j.id, t, m.From.Node)
				}
			}
			return nil
		}
		switch {
		case err == nil:
			return tsTupleResp(t)
		case errors.Is(err, context.DeadlineExceeded):
			// Parked past the window without a match; the caller re-issues,
			// which is also its liveness probe against this JobManager.
			return &protocol.TSOpResp{Retry: true}
		default:
			return tsErrResp(err)
		}
	}
	return &protocol.TSOpResp{Err: "unsupported tuple-space kind " + kind.String()}
}

// HandleTSCancel processes a requester's notice that it abandoned a
// parked blocking op. No reply: the requester already moved on.
func (jm *JobManager) HandleTSCancel(m *msg.Message) {
	var req protocol.TSCancelReq
	if err := protocol.Decode(m, &req); err != nil {
		jm.logf("bad ts-cancel: %v", err)
		return
	}
	jm.parked.abort(tsParkKey(m.From.Node, req.ReqID))
}

// ReturnTSTuple puts back a tuple taken by a destructive op (TS_IN /
// TS_INP) whose reply could not be delivered — the requester's node died
// between parking and wakeup, so a stale waiter consumed the tuple and
// the fabric rejected the answer. Without the put-back the tuple would be
// lost to every live worker; with it the take degrades to a no-op and a
// surviving (or re-placed) worker matches the tuple instead. The server
// calls this only when Send itself failed; a reply lost in flight after a
// successful Send is the fabric's documented at-most-once semantics.
func (jm *JobManager) ReturnTSTuple(req, reply *msg.Message) {
	if req.Kind != msg.KindTSIn && req.Kind != msg.KindTSInP {
		return
	}
	var resp protocol.TSOpResp
	if err := protocol.Decode(reply, &resp); err != nil || !resp.OK || resp.Fields == nil {
		return
	}
	var op protocol.TSOpReq
	if err := protocol.Decode(req, &op); err != nil {
		return
	}
	j, err := jm.job(op.JobID)
	if err != nil {
		return
	}
	t, err := protocol.DecodeTuple(resp.Fields)
	if err != nil {
		return
	}
	// A closed space (job already terminal) rejects the put-back; nothing
	// is waiting on it anymore.
	if err := j.space.Out(t); err == nil {
		jm.logf("job %s: returned tuple %s after undeliverable %s reply to %s",
			j.id, t, req.Kind, req.From.Node)
	}
}

func tsErrResp(err error) *protocol.TSOpResp {
	switch {
	case errors.Is(err, tuplespace.ErrClosed):
		return &protocol.TSOpResp{Closed: true}
	case errors.Is(err, tuplespace.ErrNoMatch):
		return &protocol.TSOpResp{NoMatch: true}
	}
	return &protocol.TSOpResp{Err: err.Error()}
}

func tsTupleResp(t tuplespace.Tuple) *protocol.TSOpResp {
	fields, err := protocol.EncodeTuple(t)
	if err != nil {
		// Stored tuples were wire-encodable on the way in; this is a
		// programming error, surfaced rather than panicking the handler.
		return &protocol.TSOpResp{Err: err.Error()}
	}
	return &protocol.TSOpResp{OK: true, Fields: fields}
}
