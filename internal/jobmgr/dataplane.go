// JobManager side of the direct task-to-task data plane.
//
// Producers advertise each published output with KindDataPut — key, digest,
// size, serving node, and (for payloads at most DataInlineMax) the bytes
// themselves. Consumers look keys up with KindDataResolve; an unpublished
// key parks the handler goroutine for the request's window and answers
// Retry when it lapses, the same shape as the blocking tuple-space ops.
// Either way the JobManager carries locations, not payloads: the bytes move
// producer-to-consumer over KindDataFetch chunk pulls between the two
// TaskManagers, so the manager's data-plane cost per key is one advert and
// one location reply regardless of output size.

package jobmgr

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cn/internal/archive"
	"cn/internal/dataplane"
	"cn/internal/msg"
	"cn/internal/protocol"
)

// Park-window clamps for KindDataResolve, mirroring the tuple-space
// bounds: the floor keeps a zero-window request from spinning the
// requester's retry loop, the ceiling keeps the reply inside the caller's
// DataCallTimeout with room to travel.
const (
	minDataPark = 10 * time.Millisecond
	maxDataPark = protocol.DataCallTimeout - 2*time.Second
)

func dataReply(m *msg.Message, resp *protocol.DataLocResp) *msg.Message {
	return m.Reply(msg.KindDataLoc, msg.MustEncode(resp))
}

// HandleDataPut processes a producer's KindDataPut advert and returns the
// KindDataLoc acknowledgement. Inline payloads are digest-verified here —
// the JobManager will serve those bytes as authoritative, so it refuses to
// store a copy that does not match its own advert.
func (jm *JobManager) HandleDataPut(m *msg.Message) *msg.Message {
	var req protocol.DataPutReq
	if err := protocol.Decode(m, &req); err != nil {
		return dataReply(m, &protocol.DataLocResp{Err: "bad data-plane put: " + err.Error()})
	}
	if req.Key == "" || req.Digest == "" || req.Size < 0 {
		return dataReply(m, &protocol.DataLocResp{Key: req.Key, Err: "data-plane put: missing key or digest"})
	}
	if len(req.Data) > 0 {
		if int64(len(req.Data)) != req.Size || req.Size > protocol.DataInlineMax {
			return dataReply(m, &protocol.DataLocResp{Key: req.Key,
				Err: fmt.Sprintf("data-plane put: inline payload %d bytes, advertised %d (max %d)",
					len(req.Data), req.Size, protocol.DataInlineMax)})
		}
		if archive.DigestBytes(req.Data) != req.Digest {
			return dataReply(m, &protocol.DataLocResp{Key: req.Key, Err: "data-plane put: inline payload digest mismatch"})
		}
	}
	j, err := jm.job(req.JobID)
	if err != nil {
		return dataReply(m, &protocol.DataLocResp{Key: req.Key, Err: err.Error()})
	}
	loc := dataplane.Loc{
		Key:    req.Key,
		Task:   req.Task,
		Node:   req.Node,
		Digest: req.Digest,
		Size:   req.Size,
		Inline: req.Data,
	}
	if err := j.broker.Put(loc); err != nil {
		return dataReply(m, &protocol.DataLocResp{Key: req.Key, Closed: true})
	}
	return dataReply(m, &protocol.DataLocResp{Key: req.Key, Digest: req.Digest, Node: req.Node, Size: req.Size})
}

// HandleDataResolve processes a consumer's KindDataResolve and returns the
// KindDataLoc reply. An unpublished key parks the calling goroutine up to
// the clamped window; the server must invoke this handler off the
// endpoint's dispatch loop. Resolve replies are non-destructive, so a
// lapsed park simply answers Retry — no cancel protocol is needed.
func (jm *JobManager) HandleDataResolve(m *msg.Message) *msg.Message {
	var req protocol.DataResolveReq
	if err := protocol.Decode(m, &req); err != nil {
		return dataReply(m, &protocol.DataLocResp{Err: "bad data-plane resolve: " + err.Error()})
	}
	j, err := jm.job(req.JobID)
	if err != nil {
		return dataReply(m, &protocol.DataLocResp{Key: req.Key, Err: err.Error()})
	}
	if req.StaleNode != "" {
		// The consumer failed to fetch from this advert (the producer's
		// node died under it); drop the stale location before resolving so
		// it is not served a second time. Inline-backed adverts degrade to
		// JM-served instead of dropping; a genuinely lost payload means its
		// producer must run again — the consumer's hint can land before the
		// node's lease even lapses, so recovery cannot be left to the
		// health monitor's InvalidateNode sweep alone.
		if lost, ok := j.broker.Invalidate(req.Key, req.StaleNode, req.StaleDigest); ok {
			jm.rerunProducer(j, lost)
		}
	}
	park := time.Duration(req.ParkMS) * time.Millisecond
	if park <= 0 {
		park = protocol.DataParkWindow
	}
	park = min(max(park, minDataPark), maxDataPark)
	ctx, cancel := context.WithTimeout(context.Background(), park)
	defer cancel()
	loc, err := j.broker.Resolve(ctx, req.Key)
	switch {
	case err == nil:
		resp := &protocol.DataLocResp{Key: loc.Key, Digest: loc.Digest, Node: loc.Node, Size: loc.Size}
		if len(loc.Inline) > 0 {
			resp.Data = loc.Inline
			jm.dpStats.InlineBytes.Add(int64(len(loc.Inline)))
		}
		return dataReply(m, resp)
	case errors.Is(err, dataplane.ErrClosed):
		return dataReply(m, &protocol.DataLocResp{Key: req.Key, Closed: true})
	default:
		// The park window lapsed unpublished; the consumer re-issues.
		jm.dpStats.Retries.Add(1)
		return dataReply(m, &protocol.DataLocResp{Key: req.Key, Retry: true})
	}
}

// rerunProducer routes a completed task whose advertised output was lost
// back through the recovery engine so a consumer parked on the key can
// eventually be answered by the re-published advert. Placement runs on its
// own goroutine — the caller is a parked resolve handler whose window
// should tick against the re-run, not against placement round trips.
func (jm *JobManager) rerunProducer(j *jobState, l dataplane.Loc) {
	name := l.Task
	j.mu.Lock()
	if name == "" || j.notified || j.retrying[name] || j.schedule == nil ||
		j.schedule.Status(name) != StatusDone || !j.schedule.Rerun(name) {
		j.mu.Unlock()
		return
	}
	j.retrying[name] = true
	j.mu.Unlock()

	jm.mu.Lock()
	if jm.closed {
		jm.mu.Unlock()
		return
	}
	jm.wg.Add(1)
	jm.mu.Unlock()
	go func() {
		defer jm.wg.Done()
		jm.retryTasks(j, []string{name},
			fmt.Sprintf("data-plane output %q lost with node %s", l.Key, l.Node),
			map[string]bool{l.Node: true})
	}()
}

// DataplaneStats snapshots the manager's aggregate data-plane broker
// counters across all hosted jobs.
func (jm *JobManager) DataplaneStats() dataplane.StatsSnapshot {
	return jm.dpStats.Snapshot()
}
