package jobmgr

import (
	"testing"
	"time"

	"cn/internal/msg"
)

func noSend(string, *msg.Message) error { return nil }

// TestConfigAssignTimeoutDefault pins the batch-assignment dispatch
// window: zero selects DefaultAssignTimeout (the previously hardcoded
// 5s), and an explicit value — slow CI lifting it clear of the client's
// 10s call timeout — is honored verbatim.
func TestConfigAssignTimeoutDefault(t *testing.T) {
	jm := New(Config{Node: "n1", HeartbeatInterval: -1}, noSend, nil, nil)
	defer jm.Close()
	if got := jm.cfg.AssignTimeout; got != DefaultAssignTimeout {
		t.Errorf("default AssignTimeout = %v, want %v", got, DefaultAssignTimeout)
	}
	if DefaultAssignTimeout != 5*time.Second {
		t.Errorf("DefaultAssignTimeout = %v, want the pre-config 5s", DefaultAssignTimeout)
	}

	jm2 := New(Config{Node: "n2", HeartbeatInterval: -1, AssignTimeout: 9 * time.Second}, noSend, nil, nil)
	defer jm2.Close()
	if got := jm2.cfg.AssignTimeout; got != 9*time.Second {
		t.Errorf("explicit AssignTimeout = %v, want 9s", got)
	}
}
