// Recovery engine: the JobManager half of CN's fault-tolerance subsystem.
//
// TaskManagers stream HEARTBEAT messages (lease renewal + per-task
// progress sync) to every JobManager holding assignments on them. Each
// JobManager feeds the beats into a health.Monitor and reacts to its
// transitions:
//
//   - suspect: the node's cached offer is evicted so new plans avoid it;
//   - dead: the node's in-flight tasks are orphaned and re-placed on
//     surviving nodes (archive blobs re-fetch by digest, so re-placement
//     costs one assignment round, not a re-upload), bounded by the
//     MaxTaskRetries budget; exhausted tasks fail so the job terminates
//     instead of hanging;
//   - alive (resurrection): nothing to undo — the next solicitation round
//     re-admits the node.
//
// A separate straggler scan (enabled by Config.StragglerAfter) re-places
// running tasks whose progress sync has stalled: a speculative twin runs
// on another node, the first result wins, and the loser is cancelled.
// Every re-placement is announced to the client as a KindTaskRetried
// event carrying the attempt count and reason.

package jobmgr

import (
	"fmt"
	"sort"
	"time"

	"cn/internal/health"
	"cn/internal/msg"
	"cn/internal/protocol"
)

// maxRetries returns the effective per-task re-placement budget.
func (jm *JobManager) maxRetries() int {
	if jm.cfg.MaxTaskRetries < 0 {
		return 0
	}
	return jm.cfg.MaxTaskRetries
}

// liveNodes is the placement directory's liveness gate: one snapshot of
// the nodes that are valid placement targets — members of the TaskManager
// discovery group (they did not leave or crash off the fabric) whose
// health lease is current (not suspect or dead). Built once per Offers()
// evaluation so the cache-hit hot path stays O(nodes).
func (jm *JobManager) liveNodes() map[string]bool {
	if jm.caller == nil {
		return nil // no fabric view: treat every node as live
	}
	members := jm.caller.Endpoint().GroupMembers(protocol.GroupTaskManagers)
	live := make(map[string]bool, len(members))
	for _, n := range members {
		if jm.monitor.Alive(n) {
			live[n] = true
		}
	}
	return live
}

// HandleHeartbeat processes a TaskManager's KindHeartbeat: renew the
// node's lease, absorb the per-task progress sync, and acknowledge —
// flagging beat jobs this JobManager no longer tracks so the TaskManager
// can release their leftover assignments.
func (jm *JobManager) HandleHeartbeat(m *msg.Message) *msg.Message {
	var hb protocol.Heartbeat
	if err := protocol.Decode(m, &hb); err != nil {
		jm.logf("bad heartbeat: %v", err)
		return nil
	}
	node := hb.Node
	if node == "" {
		node = m.From.Node
	}
	if len(hb.Beats) == 0 {
		// Goodbye beat: the TaskManager holds nothing of ours anymore. Drop
		// the lease only when this JobManager agrees — if the schedule still
		// shows live tasks there (a dropped completion event, or a goodbye
		// that raced a fresh assignment), the lease must stay so its lapse
		// can trigger recovery instead of the job hanging unmonitored.
		if !jm.hasLivePlacements(node) {
			jm.monitor.Forget(node)
		}
		return m.Reply(msg.KindHeartbeatAck, msg.MustEncode(protocol.HeartbeatAck{Node: jm.cfg.Node, Seq: hb.Seq}))
	}
	jm.monitor.Observe(node)
	// The beat doubles as a load sync: the node's running count refreshes
	// the placement directory's affinity overlay, keeping plans honest
	// between solicitation rounds.
	running := 0
	for _, b := range hb.Beats {
		if b.Running {
			running++
		}
	}
	jm.dir.SyncLoad(node, running)
	now := time.Now()
	unknown := make(map[string]bool)
	for _, b := range hb.Beats {
		jm.mu.Lock()
		j, ok := jm.jobs[b.JobID]
		jm.mu.Unlock()
		if !ok {
			unknown[b.JobID] = true
			continue
		}
		if !b.Running {
			continue
		}
		j.mu.Lock()
		// Only the current primary's beats drive straggler detection; a
		// speculative twin or stale copy must not mask a stalled primary.
		if j.placement[b.Task] == node {
			bs := j.beats[b.Task]
			if bs == nil {
				bs = &beatState{}
				j.beats[b.Task] = bs
			}
			if b.Progress != bs.progress || bs.changedAt.IsZero() {
				bs.progress = b.Progress
				bs.changedAt = now
			}
		}
		j.mu.Unlock()
	}
	ack := protocol.HeartbeatAck{Node: jm.cfg.Node, Seq: hb.Seq}
	for id := range unknown {
		ack.UnknownJobs = append(ack.UnknownJobs, id)
	}
	sort.Strings(ack.UnknownJobs)
	return m.Reply(msg.KindHeartbeatAck, msg.MustEncode(ack))
}

// hasLivePlacements reports whether any hosted job still has a
// non-terminal task placed (or speculated) on the node.
func (jm *JobManager) hasLivePlacements(node string) bool {
	jm.mu.Lock()
	jobs := make([]*jobState, 0, len(jm.jobs))
	for _, j := range jm.jobs {
		jobs = append(jobs, j)
	}
	jm.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if j.notified {
			j.mu.Unlock()
			continue
		}
		for taskName, n := range j.placement {
			if n != node {
				continue
			}
			if j.schedule == nil {
				j.mu.Unlock()
				return true
			}
			switch j.schedule.Status(taskName) {
			case StatusDone, StatusFailed, StatusCancelled:
			default:
				j.mu.Unlock()
				return true
			}
		}
		for _, n := range j.speculative {
			if n == node {
				j.mu.Unlock()
				return true
			}
		}
		j.mu.Unlock()
	}
	return false
}

// watchHealth reacts to the failure detector's state transitions.
func (jm *JobManager) watchHealth() {
	defer jm.wg.Done()
	ch, cancel := jm.monitor.Subscribe()
	defer cancel()
	for {
		select {
		case <-jm.stop:
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			switch ev.State {
			case health.StateSuspect:
				// Suspect nodes are excluded from new plans but their
				// tasks keep running: a late beat resurrects them cheaply.
				jm.dir.Evict(ev.Node)
				jm.logf("node %s suspect; excluded from placement", ev.Node)
			case health.StateDead:
				jm.recoverNode(ev.Node)
			case health.StateAlive:
				// Resurrection: the next solicitation round re-admits it.
				jm.logf("node %s alive again", ev.Node)
			}
		}
	}
}

// recoverNode orphans a dead node's in-flight tasks across every hosted
// job and re-places them on surviving nodes.
func (jm *JobManager) recoverNode(node string) {
	jm.dir.Evict(node)
	jm.mu.Lock()
	jobs := make([]*jobState, 0, len(jm.jobs))
	for _, j := range jm.jobs {
		jobs = append(jobs, j)
	}
	jm.mu.Unlock()

	recovered := 0
	for _, j := range jobs {
		var orphans []string
		j.mu.Lock()
		if j.notified {
			j.mu.Unlock()
			continue
		}
		// Twins on the dead node simply disappear; their primaries live on.
		for taskName, n := range j.speculative {
			if n == node {
				delete(j.speculative, taskName)
			}
		}
		for taskName, n := range j.placement {
			if n != node || j.retrying[taskName] {
				continue
			}
			if j.schedule != nil {
				switch j.schedule.Status(taskName) {
				case StatusDone, StatusFailed, StatusCancelled:
					continue
				}
			}
			if twin := j.speculative[taskName]; twin != "" {
				// The task already has a live copy elsewhere: promote it
				// instead of re-placing. Reseed the straggler baseline, or
				// the healthy twin would be judged by the dead primary's
				// stale stall timestamp and immediately re-speculated.
				j.placement[taskName] = twin
				delete(j.speculative, taskName)
				j.beats[taskName] = &beatState{changedAt: time.Now()}
				continue
			}
			j.retrying[taskName] = true
			orphans = append(orphans, taskName)
		}
		// Data-plane adverts served by the dead node are unreachable now.
		// Inline-backed ones degrade to JM-served copies inside the broker;
		// the rest are lost outputs whose producers must run again — even
		// completed ones, since a consumer may yet resolve the key. Running
		// producers on the dead node are already orphaned above; running
		// producers elsewhere will re-advertise when they complete.
		for _, l := range j.broker.InvalidateNode(node) {
			name := l.Task
			if name == "" || j.retrying[name] || j.schedule == nil {
				continue
			}
			if j.schedule.Status(name) != StatusDone || !j.schedule.Rerun(name) {
				continue
			}
			j.retrying[name] = true
			orphans = append(orphans, name)
		}
		j.mu.Unlock()
		if len(orphans) > 0 {
			recovered += len(orphans)
			jm.retryTasks(j, orphans, fmt.Sprintf("node %s died", node), map[string]bool{node: true})
		}
	}
	// The node's lease record has served its purpose; a resurrected node
	// re-registers when it next hosts tasks for this JobManager.
	jm.monitor.Forget(node)
	jm.logf("node %s dead: %d orphaned tasks recovered", node, recovered)
}

// retryOrFail routes a single task into the recovery path after its exec
// dispatch failed, falling back to an immediate task failure when recovery
// is disabled. It never blocks the caller: re-placement performs
// solicitation round trips, so it runs on its own goroutine.
func (jm *JobManager) retryOrFail(j *jobState, name, badNode, reason string) {
	if jm.cfg.MaxTaskRetries < 0 {
		jm.onTaskEvent(msg.KindTaskFailed, &protocol.TaskEvent{
			JobID: j.id, Task: name, Node: badNode, Err: reason,
		})
		return
	}
	j.mu.Lock()
	if j.retrying[name] || j.notified {
		j.mu.Unlock()
		return
	}
	j.retrying[name] = true
	j.mu.Unlock()

	jm.mu.Lock()
	if jm.closed {
		jm.mu.Unlock()
		return
	}
	jm.wg.Add(1)
	jm.mu.Unlock()
	go func() {
		defer jm.wg.Done()
		jm.retryTasks(j, []string{name}, reason, map[string]bool{badNode: true})
	}()
}

// retryTasks re-places a set of a job's tasks whose assignments were lost.
// Every task named must already be marked in j.retrying by the caller.
// Budget-exhausted tasks fail (the job terminates instead of hanging); the
// rest are re-assigned on surviving nodes in one batch, re-dispatched when
// they were already running, and announced to the client as
// KindTaskRetried events.
func (jm *JobManager) retryTasks(j *jobState, names []string, reason string, exclude map[string]bool) {
	budget := jm.maxRetries()
	var exhausted, toPlace []string
	var items []protocol.TaskCreate
	attempts := make(map[string]int, len(names))

	j.mu.Lock()
	if j.notified {
		for _, name := range names {
			delete(j.retrying, name)
		}
		j.mu.Unlock()
		return
	}
	for _, name := range names {
		sp := j.specs[name]
		if sp == nil {
			delete(j.retrying, name)
			continue
		}
		if j.retries[name] >= budget {
			attempts[name] = j.retries[name]
			exhausted = append(exhausted, name)
			continue
		}
		j.retries[name]++
		attempts[name] = j.retries[name]
		items = append(items, protocol.TaskCreate{Spec: sp, Archive: j.archives[name]})
		toPlace = append(toPlace, name)
	}
	j.mu.Unlock()

	for _, name := range exhausted {
		jm.clearRetrying(j, name)
		jm.onTaskEvent(msg.KindTaskFailed, &protocol.TaskEvent{
			JobID: j.id, Task: name,
			Err:     fmt.Sprintf("%s; retry budget (%d) exhausted", reason, budget),
			Attempt: attempts[name],
		})
	}
	if len(items) == 0 {
		return
	}

	placements, err := jm.placeBatch(j, items, exclude)
	if err != nil {
		for _, name := range toPlace {
			jm.clearRetrying(j, name)
			jm.onTaskEvent(msg.KindTaskFailed, &protocol.TaskEvent{
				JobID: j.id, Task: name,
				Err:     fmt.Sprintf("%s; re-placement failed: %v", reason, err),
				Attempt: attempts[name],
			})
		}
		return
	}

	var execNow, applied []string
	obsolete := make(map[string]string)
	j.mu.Lock()
	if j.notified {
		// The job finished (or was cancelled) while placement ran; the
		// fresh reservations must not leak.
		for _, name := range toPlace {
			delete(j.retrying, name)
		}
		j.mu.Unlock()
		jm.releaseBatch(j, placements, "job finished during recovery")
		return
	}
	now := time.Now()
	for _, name := range toPlace {
		delete(j.retrying, name)
		node := placements[name]
		if node == "" {
			continue
		}
		// The task may have reached a terminal state while placement ran
		// (a falsely-declared-dead node's copy completed): the result
		// stands and the fresh assignment must be released, not recorded.
		if j.schedule != nil {
			switch j.schedule.Status(name) {
			case StatusDone, StatusFailed, StatusCancelled:
				obsolete[name] = node
				continue
			}
		}
		j.placement[name] = node
		j.beats[name] = &beatState{changedAt: now}
		applied = append(applied, name)
		if j.schedule != nil && j.schedule.Status(name) == StatusRunning {
			execNow = append(execNow, name)
		}
	}
	j.mu.Unlock()

	if len(obsolete) > 0 {
		jm.releaseBatch(j, obsolete, "task finished during recovery")
	}
	// Lease only the nodes that actually kept an assignment: a node whose
	// placement was released as obsolete may never beat for us, and
	// watching it would falsely declare a healthy node dead.
	for _, name := range applied {
		jm.monitor.Watch(placements[name])
	}
	for _, name := range applied {
		// Retries are trace-visible: one anchor span per re-placement, its
		// Err carrying the reason (node death, lost output, dispatch failure).
		ra := jm.tracer.StartSpan(j.root, "jm.retry").SetJob(j.id).SetTask(name)
		jm.endSpan(j, ra, reason)
		jm.forwardToClient(j, msg.KindTaskRetried, &protocol.TaskEvent{
			JobID: j.id, Task: name, Node: placements[name],
			Err: reason, Attempt: attempts[name],
		})
	}
	for _, name := range execNow {
		jm.execTask(j, name)
	}
	jm.log.Info("tasks re-placed", "job", j.id, "tasks", len(applied), "reason", reason)
}

func (jm *JobManager) clearRetrying(j *jobState, name string) {
	j.mu.Lock()
	delete(j.retrying, name)
	j.mu.Unlock()
}

// stragglerLoop periodically scans running tasks for stalled progress.
func (jm *JobManager) stragglerLoop() {
	defer jm.wg.Done()
	sweep := jm.cfg.StragglerAfter / 4
	if sweep < 5*time.Millisecond {
		sweep = 5 * time.Millisecond
	}
	ticker := time.NewTicker(sweep)
	defer ticker.Stop()
	for {
		select {
		case <-jm.stop:
			return
		case now := <-ticker.C:
			jm.checkStragglers(now)
		}
	}
}

// checkStragglers speculatively re-places running tasks whose progress
// sync has not advanced for StragglerAfter. The twin runs alongside the
// original: the first terminal result wins and the loser is cancelled.
func (jm *JobManager) checkStragglers(now time.Time) {
	jm.mu.Lock()
	jobs := make([]*jobState, 0, len(jm.jobs))
	for _, j := range jm.jobs {
		jobs = append(jobs, j)
	}
	jm.mu.Unlock()

	budget := jm.maxRetries()
	for _, j := range jobs {
		var candidates []string
		j.mu.Lock()
		if j.schedule == nil || j.notified {
			j.mu.Unlock()
			continue
		}
		for name, node := range j.placement {
			if j.schedule.Status(name) != StatusRunning {
				continue
			}
			if j.speculative[name] != "" || j.retrying[name] || j.retries[name] >= budget {
				continue
			}
			if !jm.monitor.Alive(node) {
				continue // suspect/dead nodes are the recovery path's job
			}
			b := j.beats[name]
			if b == nil || now.Sub(b.changedAt) < jm.cfg.StragglerAfter {
				continue
			}
			j.retrying[name] = true
			candidates = append(candidates, name)
		}
		j.mu.Unlock()
		for _, name := range candidates {
			jm.speculate(j, name)
		}
	}
}

// speculate places and starts one straggler's twin on another node.
func (jm *JobManager) speculate(j *jobState, name string) {
	j.mu.Lock()
	sp := j.specs[name]
	primary := j.placement[name]
	ref := j.archives[name]
	j.retries[name]++
	attempt := j.retries[name]
	j.mu.Unlock()
	if sp == nil {
		jm.clearRetrying(j, name)
		return
	}

	reason := fmt.Sprintf("straggler: no progress for %v on %s", jm.cfg.StragglerAfter, primary)
	// Mark the straggling node in the directory's affinity overlay so the
	// scorer steers this twin — and subsequent placements — away from it
	// until the marks decay.
	jm.dir.NoteStraggler(primary)
	placements, err := jm.placeBatch(j, []protocol.TaskCreate{{Spec: sp, Archive: ref}},
		map[string]bool{primary: true})
	if err != nil {
		// No capacity for a twin: leave the original running and return
		// the budget unit so a real failure can still be recovered.
		j.mu.Lock()
		j.retries[name]--
		delete(j.retrying, name)
		j.mu.Unlock()
		jm.logf("job %s: cannot speculate %q: %v", j.id, name, err)
		return
	}
	node := placements[name]

	j.mu.Lock()
	obsolete := j.notified || j.schedule == nil ||
		j.schedule.Status(name) != StatusRunning || j.placement[name] != primary
	if obsolete {
		delete(j.retrying, name)
		j.mu.Unlock()
		jm.releaseBatch(j, placements, "speculation obsolete")
		return
	}
	j.speculative[name] = node
	delete(j.retrying, name)
	j.mu.Unlock()

	em := protocol.Body(msg.KindExecTask,
		msg.Address{Node: jm.cfg.Node, Job: j.id},
		msg.Address{Node: node, Job: j.id, Task: name},
		protocol.ExecTaskReq{JobID: j.id, Task: name})
	sa := jm.tracer.StartSpan(j.root, "jm.speculate").SetJob(j.id).SetTask(name)
	if ctx := sa.Context(); !ctx.IsZero() {
		em.Trace = ctx
	} else {
		em.Trace = j.root
	}
	jm.endSpan(j, sa, reason)
	if err := jm.send(node, em); err != nil {
		// The twin never ran: release its reservation, return the budget
		// unit, and do not advertise a retry that did not happen.
		jm.logf("job %s: start twin %q on %s: %v", j.id, name, node, err)
		j.mu.Lock()
		if j.speculative[name] == node {
			delete(j.speculative, name)
		}
		j.retries[name]--
		j.mu.Unlock()
		jm.releaseBatch(j, placements, "twin dispatch failed")
		return
	}
	jm.monitor.Watch(node)
	jm.forwardToClient(j, msg.KindTaskRetried, &protocol.TaskEvent{
		JobID: j.id, Task: name, Node: node,
		Err: reason, Attempt: attempt, Speculative: true,
	})
	jm.logf("job %s: speculating %q on %s (primary %s)", j.id, name, node, primary)
}
