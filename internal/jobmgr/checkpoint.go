// JobManager durability: peer checkpoint replication and failover.
//
// At Config.CheckpointEvery cadence each JobManager multicasts, per hosted
// job, a KindJMCheckpoint carrying an opaque snapshot of the job's control
// state — specs, placement, schedule progress, retry budgets, tuple-space
// contents, and (size permitting) the stashed archive blobs. Peers store
// the latest snapshot per (origin, job) without decoding it and feed the
// arrivals into a failure detector over the JobManager group.
//
// When an origin goes dead, the lexicographically smallest surviving group
// member adopts its checkpointed jobs: the snapshot is decoded into a
// fresh jobState, the tuple space is rebuilt, the TaskManagers named by
// the checkpoint are told (KindJMAdopt) to re-point the job's assignments
// at the adopter, and tasks the checkpoint knows about but no surviving
// TaskManager still holds — including everything placed on the dead node
// itself — re-enter the existing recovery engine for re-placement.
// Finally the client is notified (a one-way KindJMAdopt) so its future
// calls target the survivor.
//
// Guarantees (and their limits): task execution is at-least-once — a
// completion event in flight when the origin died is lost and the task
// re-runs; tuple-space contents revert to the last checkpoint; if the
// elected adopter itself dies mid-adoption the job is lost (checkpoints
// replicate one failure deep).

package jobmgr

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cn/internal/dataplane"
	"cn/internal/health"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/trace"
	"cn/internal/tuplespace"
	"cn/internal/wire"
)

// ckptVersion versions the opaque checkpoint encoding. A peer on a newer
// build refuses images newer than it can read; older ones within
// ckptMinVersion decode with their missing sections defaulted. Version 2
// added the data-plane location table; version 3 appended the trace
// section (root context + a capped span timeline).
const ckptVersion = 3

// ckptMinVersion is the oldest checkpoint image a peer still accepts.
const ckptMinVersion = 2

// maxCheckpointTraceSpans caps the timeline spans a checkpoint carries;
// the early, structural spans (submit, placement, dispatch) survive
// failover, later per-task detail is best-effort.
const maxCheckpointTraceSpans = 256

// maxCheckpointBlobBytes caps the aggregate archive bytes a checkpoint
// inlines. Jobs whose blobs exceed it checkpoint without them: re-placed
// tasks then depend on the chosen TaskManager's digest cache, and a node
// without the blob fails the assignment and retries elsewhere.
const maxCheckpointBlobBytes = 256 << 10

// maxCheckpointDataBytes bounds the encoded snapshot so the multicast
// stays under the transport frame limit with headroom for the envelope.
const maxCheckpointDataBytes = 768 << 10

// peerCheckpoint is the stored image of one (origin, job) checkpoint.
type peerCheckpoint struct {
	seq  uint64
	data []byte
}

// jobCheckpoint is the decoded control state of one job.
type jobCheckpoint struct {
	name       string
	clientNode string
	started    bool
	specs      []*task.Spec
	placement  map[string]string
	archives   map[string]protocol.ArchiveRef
	retries    map[string]int
	taskErrs   map[string]string
	statuses   map[string]Status // nil when the job never started
	tuples     []tuplespace.Tuple
	tsOps      int64
	blobs      map[string][]byte
	locs       []dataplane.Loc
	root       trace.Context
	timeline   []trace.Span
}

// checkpointLoop multicasts every hosted job's control state to the
// JobManager group at the configured cadence.
func (jm *JobManager) checkpointLoop() {
	defer jm.wg.Done()
	ticker := time.NewTicker(jm.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-jm.stop:
			return
		case <-ticker.C:
			jm.checkpointAll()
		}
	}
}

// checkpointAll emits one checkpoint round: a snapshot per live job, a
// single terminal tombstone per finished one.
func (jm *JobManager) checkpointAll() {
	jm.mu.Lock()
	jobs := make([]*jobState, 0, len(jm.jobs))
	for _, j := range jm.jobs {
		jobs = append(jobs, j)
	}
	jm.mu.Unlock()

	for _, j := range jobs {
		j.mu.Lock()
		if j.notified {
			if j.ckptDone {
				j.mu.Unlock()
				continue
			}
			j.ckptDone = true
			j.ckptSeq++
			ck := protocol.JMCheckpoint{Origin: jm.cfg.Node, JobID: j.id, Seq: j.ckptSeq, Done: true}
			j.mu.Unlock()
			jm.multicastCheckpoint(ck)
			continue
		}
		data, err := encodeJobCheckpointLocked(j)
		if err != nil {
			j.mu.Unlock()
			jm.logf("job %s: checkpoint encode: %v", j.id, err)
			continue
		}
		j.ckptSeq++
		ck := protocol.JMCheckpoint{Origin: jm.cfg.Node, JobID: j.id, Seq: j.ckptSeq, Data: data}
		j.mu.Unlock()
		jm.multicastCheckpoint(ck)
	}
}

func (jm *JobManager) multicastCheckpoint(ck protocol.JMCheckpoint) {
	m := protocol.Body(msg.KindJMCheckpoint,
		msg.Address{Node: jm.cfg.Node, Job: ck.JobID},
		msg.Address{},
		ck)
	if err := jm.caller.Endpoint().Multicast(protocol.GroupJobManagers, m); err != nil {
		jm.logf("job %s: checkpoint multicast: %v", ck.JobID, err)
	}
}

// HandleCheckpoint absorbs a peer's KindJMCheckpoint: renew the origin's
// lease and keep the newest snapshot per job. The multicast loops back to
// the sender; its own checkpoints are ignored here.
func (jm *JobManager) HandleCheckpoint(m *msg.Message) {
	if jm.peers == nil {
		return
	}
	var ck protocol.JMCheckpoint
	if err := protocol.Decode(m, &ck); err != nil {
		jm.logf("bad checkpoint: %v", err)
		return
	}
	if ck.Origin == "" || ck.Origin == jm.cfg.Node || ck.JobID == "" {
		return
	}
	jm.peers.Observe(ck.Origin)
	jm.peerMu.Lock()
	defer jm.peerMu.Unlock()
	byJob := jm.peerCkpts[ck.Origin]
	if ck.Done {
		delete(byJob, ck.JobID)
		if len(byJob) == 0 {
			delete(jm.peerCkpts, ck.Origin)
		}
		return
	}
	if byJob == nil {
		byJob = make(map[string]*peerCheckpoint)
		jm.peerCkpts[ck.Origin] = byJob
	}
	if prev := byJob[ck.JobID]; prev == nil || ck.Seq > prev.seq {
		byJob[ck.JobID] = &peerCheckpoint{seq: ck.Seq, data: append([]byte(nil), ck.Data...)}
	}
}

// watchPeers reacts to the peer failure detector: a dead origin's jobs are
// put up for adoption.
func (jm *JobManager) watchPeers() {
	defer jm.wg.Done()
	ch, cancel := jm.peers.Subscribe()
	defer cancel()
	for {
		select {
		case <-jm.stop:
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if ev.State == health.StateDead {
				jm.adoptFrom(ev.Node)
			}
		}
	}
}

// adoptFrom runs the failover election for a dead origin and, when this
// node wins, adopts every job the origin checkpointed. Losers drop their
// copies: the winner re-replicates the jobs under its own name on its next
// checkpoint tick.
func (jm *JobManager) adoptFrom(origin string) {
	jm.peerMu.Lock()
	byJob := jm.peerCkpts[origin]
	delete(jm.peerCkpts, origin)
	jm.peerMu.Unlock()
	jm.peers.Forget(origin)
	if len(byJob) == 0 {
		return
	}
	// Election without coordination: the lexicographically smallest
	// surviving member of the JobManager group adopts. The dead origin
	// already left the group (its endpoint closed with it), but it is
	// excluded explicitly in case its membership lingers.
	winner := jm.cfg.Node
	for _, n := range jm.caller.Endpoint().GroupMembers(protocol.GroupJobManagers) {
		if n != origin && n < winner {
			winner = n
		}
	}
	if winner != jm.cfg.Node {
		jm.logf("peer %s dead: %s adopts its %d jobs", origin, winner, len(byJob))
		return
	}
	ids := make([]string, 0, len(byJob))
	for id := range byJob {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := jm.adoptJob(origin, id, byJob[id].data); err != nil {
			jm.logf("adopt job %s from dead %s: %v", id, origin, err)
		}
	}
}

// adoptJob rebuilds one checkpointed job under this JobManager and
// re-homes its live assignments.
func (jm *JobManager) adoptJob(origin, jobID string, data []byte) error {
	ck, err := decodeJobCheckpoint(data)
	if err != nil {
		return err
	}

	j := &jobState{
		id:          jobID,
		name:        ck.name,
		clientNode:  ck.clientNode,
		queue:       msg.NewMailbox(jobQueueCap),
		specs:       make(map[string]*task.Spec, len(ck.specs)),
		placement:   ck.placement,
		archives:    ck.archives,
		blobs:       ck.blobs,
		staged:      make(map[string]*stagedBlob),
		started:     ck.started,
		idleSince:   time.Now(),
		taskErrs:    ck.taskErrs,
		retries:     ck.retries,
		retrying:    make(map[string]bool),
		speculative: make(map[string]string),
		beats:       make(map[string]*beatState),
		space:       tuplespace.New(),
	}
	j.root = ck.root
	j.timeline = ck.timeline
	j.broker = dataplane.NewBroker(&jm.dpStats)
	j.broker.Restore(ck.locs)
	// Adverts served by the dead origin's own TaskManager are unreachable.
	// Inline-backed ones degrade to adopter-served copies; the rest are
	// gone, and their producers re-run below alongside the placement
	// orphans (completed producers via schedule Rerun after restore).
	lostLocs := j.broker.InvalidateNode(origin)
	for _, sp := range ck.specs {
		j.specs[sp.Name] = sp
	}
	if ck.started {
		sched, err := RestoreSchedule(ck.specs, ck.statuses)
		if err != nil {
			return err
		}
		// Ready tasks in the image were caught between dependency
		// satisfaction and dispatch; the adopter owns dispatching them.
		for _, name := range sched.Ready() {
			if err := sched.MarkRunning(name); err != nil {
				return err
			}
		}
		j.schedule = sched
	}
	for _, t := range ck.tuples {
		if err := j.space.Out(t); err != nil {
			return fmt.Errorf("restore tuple space: %w", err)
		}
	}
	j.tsOps.Store(ck.tsOps)

	// Insert before contacting any TaskManager: a re-pointed node's next
	// heartbeat must find the job known here, or the ack's UnknownJobs
	// would release the very assignments being adopted.
	jm.mu.Lock()
	if jm.closed {
		jm.mu.Unlock()
		return fmt.Errorf("job manager shut down")
	}
	if _, exists := jm.jobs[jobID]; exists {
		jm.mu.Unlock()
		return nil // already hosted (a re-delivered death event)
	}
	jm.jobs[jobID] = j
	jm.wg.Add(1)
	go jm.jobWorker(j)
	jm.mu.Unlock()

	// The adoption itself is a traced event: its span parents to the
	// persisted root, so the post-failover spans hang off the same trace
	// the dead origin started.
	aa := jm.tracer.StartSpan(j.root, "jm.adopt").SetJob(jobID)
	jm.endSpan(j, aa, "")

	// A checkpoint caught between the last terminal event and the client
	// notification: nothing to re-home, just finish the job properly.
	j.mu.Lock()
	if j.schedule != nil && (j.schedule.Done() || j.schedule.Failed()) {
		failed := j.schedule.Failed()
		j.notified = true
		j.finishedAt = time.Now()
		j.mu.Unlock()
		jm.finishJob(j, failed)
		return nil
	}
	j.mu.Unlock()

	// Re-point surviving assignments node by node. checkpointed tasks on
	// the dead origin's own TaskManager, on unreachable nodes, or absent
	// from a survivor's reply are orphans for the recovery engine.
	byNode := make(map[string][]string)
	for name, node := range ck.placement {
		if j.schedule != nil {
			switch j.schedule.Status(name) {
			case StatusDone, StatusFailed, StatusCancelled:
				continue
			}
		}
		byNode[node] = append(byNode[node], name)
	}
	present := make(map[string]protocol.TaskBeat)
	for node, names := range byNode {
		if node == origin {
			continue
		}
		resp, err := jm.callAdopt(node, jobID, ck.clientNode, names)
		if err != nil {
			jm.logf("job %s: adopt call to %s: %v", jobID, node, err)
			continue
		}
		for _, b := range resp.Present {
			if b.JobID == jobID {
				present[b.Task] = b
			}
		}
	}

	var orphans, execNow []string
	now := time.Now()
	j.mu.Lock()
	for _, names := range byNode {
		for _, name := range names {
			if b, ok := present[name]; ok {
				j.beats[name] = &beatState{progress: b.Progress, changedAt: now}
				if !b.Running && j.schedule != nil && j.schedule.Status(name) == StatusRunning {
					// The assignment survived but the start never landed (the
					// exec was in flight when the origin died): dispatch it
					// now. Running copies need no re-exec — and a duplicate
					// would be swallowed by the start guard anyway.
					execNow = append(execNow, name)
				}
				continue
			}
			j.retrying[name] = true
			orphans = append(orphans, name)
		}
	}
	// Completed producers whose only data-plane output copy lived on the
	// dead origin rewind to running and re-place with the orphans, so a
	// consumer resolve parked on the adopter eventually publishes again.
	for _, l := range lostLocs {
		name := l.Task
		if name == "" || j.retrying[name] || j.schedule == nil {
			continue
		}
		if j.schedule.Status(name) != StatusDone || !j.schedule.Rerun(name) {
			continue
		}
		j.retrying[name] = true
		orphans = append(orphans, name)
	}
	j.mu.Unlock()
	sort.Strings(execNow)
	sort.Strings(orphans)

	for node := range byNode {
		if node != origin {
			jm.monitor.Watch(node)
		}
	}
	for _, name := range execNow {
		jm.execTask(j, name)
	}
	if len(orphans) > 0 {
		jm.retryTasks(j, orphans, fmt.Sprintf("job adopted after manager %s died", origin),
			map[string]bool{origin: true})
	}

	// Tell the client its job moved so future calls target this node.
	nm := protocol.Body(msg.KindJMAdopt,
		msg.Address{Node: jm.cfg.Node, Job: jobID},
		msg.Address{Node: ck.clientNode, Job: jobID, Task: protocol.ClientTaskName},
		protocol.JMAdoptReq{JobID: jobID, NewManager: jm.cfg.Node, ClientNode: ck.clientNode})
	if err := jm.send(ck.clientNode, nm); err != nil {
		jm.logf("job %s: notify client of adoption: %v", jobID, err)
	}
	jm.log.Info("job adopted", "job", jobID, "origin", origin,
		"live", len(present), "orphaned", len(orphans))
	return nil
}

// callAdopt asks one TaskManager to re-point a job's assignments.
func (jm *JobManager) callAdopt(node, jobID, clientNode string, tasks []string) (*protocol.JMAdoptResp, error) {
	sort.Strings(tasks)
	req := protocol.JMAdoptReq{JobID: jobID, NewManager: jm.cfg.Node, ClientNode: clientNode, Tasks: tasks}
	am := protocol.Body(msg.KindJMAdopt,
		msg.Address{Node: jm.cfg.Node, Job: jobID},
		msg.Address{Node: node, Job: jobID},
		req)
	ctx, cancel := context.WithTimeout(context.Background(), jm.cfg.AssignTimeout)
	defer cancel()
	reply, err := jm.caller.Call(ctx, node, am)
	if err != nil {
		return nil, err
	}
	var resp protocol.JMAdoptResp
	if err := protocol.Decode(reply, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// encodeJobCheckpointLocked flattens a job's control state with the wire
// codec's primitives. j.mu must be held. Maps are walked in sorted order
// so identical states encode identically.
func encodeJobCheckpointLocked(j *jobState) ([]byte, error) {
	var blobBytes int
	for _, raw := range j.blobs {
		blobBytes += len(raw)
	}
	withBlobs := blobBytes > 0 && blobBytes <= maxCheckpointBlobBytes

	data, err := appendJobCheckpointLocked(nil, j, withBlobs)
	if err != nil {
		return nil, err
	}
	if len(data) > maxCheckpointDataBytes && withBlobs {
		data, err = appendJobCheckpointLocked(nil, j, false)
		if err != nil {
			return nil, err
		}
	}
	if len(data) > maxCheckpointDataBytes {
		return nil, fmt.Errorf("checkpoint %d bytes exceeds cap %d", len(data), maxCheckpointDataBytes)
	}
	return data, nil
}

func appendJobCheckpointLocked(dst []byte, j *jobState, withBlobs bool) ([]byte, error) {
	dst = wire.AppendUvarint(dst, ckptVersion)
	dst = wire.AppendString(dst, j.name)
	dst = wire.AppendString(dst, j.clientNode)
	dst = wire.AppendBool(dst, j.started)

	names := sortedKeys(j.specs)
	dst = wire.AppendUvarint(dst, uint64(len(names)))
	for _, name := range names {
		sp := j.specs[name]
		dst = wire.AppendString(dst, sp.Name)
		dst = wire.AppendString(dst, sp.Archive)
		dst = wire.AppendString(dst, sp.Class)
		dst = wire.AppendUvarint(dst, uint64(len(sp.DependsOn)))
		for _, d := range sp.DependsOn {
			dst = wire.AppendString(dst, d)
		}
		dst = wire.AppendUvarint(dst, uint64(len(sp.Params)))
		for _, p := range sp.Params {
			dst = wire.AppendString(dst, string(p.Type))
			dst = wire.AppendString(dst, p.Value)
		}
		dst = wire.AppendVarint(dst, int64(sp.Req.MemoryMB))
		dst = wire.AppendVarint(dst, int64(sp.Req.RunModel))
	}

	dst = appendStringMap(dst, j.placement)
	ans := sortedKeys(j.archives)
	dst = wire.AppendUvarint(dst, uint64(len(ans)))
	for _, name := range ans {
		ref := j.archives[name]
		dst = wire.AppendString(dst, name)
		dst = wire.AppendString(dst, ref.Name)
		dst = wire.AppendString(dst, ref.Digest)
	}
	rns := sortedKeys(j.retries)
	dst = wire.AppendUvarint(dst, uint64(len(rns)))
	for _, name := range rns {
		dst = wire.AppendString(dst, name)
		dst = wire.AppendVarint(dst, int64(j.retries[name]))
	}
	dst = appendStringMap(dst, j.taskErrs)

	hasSched := j.started && j.schedule != nil
	dst = wire.AppendBool(dst, hasSched)
	if hasSched {
		sns := sortedKeys(j.schedule.state)
		dst = wire.AppendUvarint(dst, uint64(len(sns)))
		for _, name := range sns {
			dst = wire.AppendString(dst, name)
			dst = wire.AppendUvarint(dst, uint64(j.schedule.state[name]))
		}
	}

	tuples := j.space.Snapshot()
	dst = wire.AppendUvarint(dst, uint64(len(tuples)))
	for _, t := range tuples {
		fields, err := protocol.EncodeTuple(t)
		if err != nil {
			return nil, err
		}
		dst = wire.AppendUvarint(dst, uint64(len(fields)))
		for _, f := range fields {
			dst = wire.AppendString(dst, f.Kind)
			dst = wire.AppendString(dst, f.S)
			dst = wire.AppendVarint(dst, f.I)
			dst = wire.AppendFloat64(dst, f.F)
			dst = wire.AppendBool(dst, f.B)
			dst = wire.AppendBytes(dst, f.Bytes)
		}
	}
	dst = wire.AppendVarint(dst, j.tsOps.Load())

	if withBlobs {
		digests := sortedKeys(j.blobs)
		dst = wire.AppendUvarint(dst, uint64(len(digests)))
		for _, d := range digests {
			dst = wire.AppendString(dst, d)
			dst = wire.AppendBytes(dst, j.blobs[d])
		}
	} else {
		dst = wire.AppendUvarint(dst, 0)
	}

	// The data-plane location table rides every checkpoint: adverts are a
	// few strings each (plus inline copies bounded by DataInlineMax), and
	// an adopter without them would park every consumer resolve until the
	// producers were needlessly re-run.
	locs := j.broker.Entries()
	dst = wire.AppendUvarint(dst, uint64(len(locs)))
	for _, l := range locs {
		dst = wire.AppendString(dst, l.Key)
		dst = wire.AppendString(dst, l.Task)
		dst = wire.AppendString(dst, l.Node)
		dst = wire.AppendString(dst, l.Digest)
		dst = wire.AppendVarint(dst, l.Size)
		dst = wire.AppendBytes(dst, l.Inline)
	}

	// Trace section (v3): the job's root context plus a capped prefix of
	// the assembled timeline, so an adopted job keeps its pre-failover
	// spans and the adopter's own spans parent into the same trace.
	dst = wire.AppendUvarint(dst, j.root.TraceID)
	dst = wire.AppendUvarint(dst, j.root.SpanID)
	dst = wire.AppendUvarint(dst, j.root.ParentID)
	spans := j.timeline
	if len(spans) > maxCheckpointTraceSpans {
		spans = spans[:maxCheckpointTraceSpans]
	}
	dst = wire.AppendSpans(dst, spans)
	return dst, nil
}

// decodeJobCheckpoint is the inverse of encodeJobCheckpointLocked. Every
// count is bounds-checked against the remaining input by the wire reader,
// so hostile bytes error instead of allocating unbounded state.
func decodeJobCheckpoint(data []byte) (*jobCheckpoint, error) {
	r := wire.NewReader(data)
	v, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if v < ckptMinVersion || v > ckptVersion {
		return nil, fmt.Errorf("jobmgr: checkpoint version %d, want %d..%d", v, ckptMinVersion, ckptVersion)
	}
	ck := &jobCheckpoint{}
	if ck.name, err = r.String(); err != nil {
		return nil, err
	}
	if ck.clientNode, err = r.String(); err != nil {
		return nil, err
	}
	if ck.started, err = r.Bool(); err != nil {
		return nil, err
	}

	nspecs, err := r.Count("checkpoint specs")
	if err != nil {
		return nil, err
	}
	ck.specs = make([]*task.Spec, 0, nspecs)
	for i := 0; i < nspecs; i++ {
		sp := &task.Spec{}
		if sp.Name, err = r.String(); err != nil {
			return nil, err
		}
		if sp.Archive, err = r.String(); err != nil {
			return nil, err
		}
		if sp.Class, err = r.String(); err != nil {
			return nil, err
		}
		ndeps, err := r.Count("spec deps")
		if err != nil {
			return nil, err
		}
		for d := 0; d < ndeps; d++ {
			dep, err := r.String()
			if err != nil {
				return nil, err
			}
			sp.DependsOn = append(sp.DependsOn, dep)
		}
		nparams, err := r.Count("spec params")
		if err != nil {
			return nil, err
		}
		for p := 0; p < nparams; p++ {
			var pt, pv string
			if pt, err = r.String(); err != nil {
				return nil, err
			}
			if pv, err = r.String(); err != nil {
				return nil, err
			}
			sp.Params = append(sp.Params, task.Param{Type: task.ParamType(pt), Value: pv})
		}
		memMB, err := r.Varint()
		if err != nil {
			return nil, err
		}
		rm, err := r.Varint()
		if err != nil {
			return nil, err
		}
		sp.Req = task.Requirements{MemoryMB: int(memMB), RunModel: task.RunModel(rm)}
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		ck.specs = append(ck.specs, sp)
	}

	if ck.placement, err = readStringMap(r, "checkpoint placement"); err != nil {
		return nil, err
	}
	narch, err := r.Count("checkpoint archives")
	if err != nil {
		return nil, err
	}
	ck.archives = make(map[string]protocol.ArchiveRef, narch)
	for i := 0; i < narch; i++ {
		var name string
		var ref protocol.ArchiveRef
		if name, err = r.String(); err != nil {
			return nil, err
		}
		if ref.Name, err = r.String(); err != nil {
			return nil, err
		}
		if ref.Digest, err = r.String(); err != nil {
			return nil, err
		}
		ck.archives[name] = ref
	}
	nretries, err := r.Count("checkpoint retries")
	if err != nil {
		return nil, err
	}
	ck.retries = make(map[string]int, nretries)
	for i := 0; i < nretries; i++ {
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		n, err := r.Varint()
		if err != nil {
			return nil, err
		}
		ck.retries[name] = int(n)
	}
	if ck.taskErrs, err = readStringMap(r, "checkpoint task errors"); err != nil {
		return nil, err
	}

	hasSched, err := r.Bool()
	if err != nil {
		return nil, err
	}
	if hasSched {
		nst, err := r.Count("checkpoint statuses")
		if err != nil {
			return nil, err
		}
		ck.statuses = make(map[string]Status, nst)
		for i := 0; i < nst; i++ {
			name, err := r.String()
			if err != nil {
				return nil, err
			}
			st, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			if st > uint64(StatusCancelled) {
				return nil, fmt.Errorf("jobmgr: checkpoint status %d out of range", st)
			}
			ck.statuses[name] = Status(st)
		}
	}

	ntuples, err := r.Count("checkpoint tuples")
	if err != nil {
		return nil, err
	}
	ck.tuples = make([]tuplespace.Tuple, 0, ntuples)
	for i := 0; i < ntuples; i++ {
		nfields, err := r.Count("tuple fields")
		if err != nil {
			return nil, err
		}
		fields := make([]protocol.TSField, nfields)
		for fi := range fields {
			f := &fields[fi]
			if f.Kind, err = r.String(); err != nil {
				return nil, err
			}
			if f.S, err = r.String(); err != nil {
				return nil, err
			}
			if f.I, err = r.Varint(); err != nil {
				return nil, err
			}
			if f.F, err = r.Float64(); err != nil {
				return nil, err
			}
			if f.B, err = r.Bool(); err != nil {
				return nil, err
			}
			raw, err := r.Bytes()
			if err != nil {
				return nil, err
			}
			if len(raw) > 0 {
				f.Bytes = append([]byte(nil), raw...)
			}
		}
		t, err := protocol.DecodeTuple(fields)
		if err != nil {
			return nil, err
		}
		ck.tuples = append(ck.tuples, t)
	}
	if ck.tsOps, err = r.Varint(); err != nil {
		return nil, err
	}

	nblobs, err := r.Count("checkpoint blobs")
	if err != nil {
		return nil, err
	}
	ck.blobs = make(map[string][]byte, nblobs)
	for i := 0; i < nblobs; i++ {
		d, err := r.String()
		if err != nil {
			return nil, err
		}
		raw, err := r.Bytes()
		if err != nil {
			return nil, err
		}
		ck.blobs[d] = append([]byte(nil), raw...)
	}
	nlocs, err := r.Count("checkpoint data-plane locations")
	if err != nil {
		return nil, err
	}
	ck.locs = make([]dataplane.Loc, 0, nlocs)
	for i := 0; i < nlocs; i++ {
		var l dataplane.Loc
		if l.Key, err = r.String(); err != nil {
			return nil, err
		}
		if l.Task, err = r.String(); err != nil {
			return nil, err
		}
		if l.Node, err = r.String(); err != nil {
			return nil, err
		}
		if l.Digest, err = r.String(); err != nil {
			return nil, err
		}
		if l.Size, err = r.Varint(); err != nil {
			return nil, err
		}
		raw, err := r.Bytes()
		if err != nil {
			return nil, err
		}
		if len(raw) > 0 {
			l.Inline = append([]byte(nil), raw...)
		}
		ck.locs = append(ck.locs, l)
	}
	if v >= 3 {
		if ck.root.TraceID, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if ck.root.SpanID, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if ck.root.ParentID, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if ck.timeline, err = wire.ReadSpans(r); err != nil {
			return nil, err
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("jobmgr: %d trailing bytes after checkpoint", r.Len())
	}
	return ck, nil
}

func appendStringMap(dst []byte, m map[string]string) []byte {
	keys := sortedKeys(m)
	dst = wire.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = wire.AppendString(dst, k)
		dst = wire.AppendString(dst, m[k])
	}
	return dst
}

func readStringMap(r *wire.Reader, what string) (map[string]string, error) {
	n, err := r.Count(what)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k, err := r.String()
		if err != nil {
			return nil, err
		}
		v, err := r.String()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
