package wire

import (
	"reflect"
	"testing"
	"time"

	"cn/internal/metrics"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
	"cn/internal/trace"
)

// specFixture builds a representative task spec exercising every field.
func specFixture(name string) *task.Spec {
	return &task.Spec{
		Name:      name,
		Archive:   "tctask.jar",
		Class:     "org.jhpc.cn2.trnsclsrtask.TCTask",
		DependsOn: []string{"a", "b"},
		Params: []task.Param{
			{Type: task.TypeInteger, Value: "42"},
			{Type: task.TypeString, Value: "hello"},
		},
		Req: task.Requirements{MemoryMB: 1000, RunModel: task.RunAsProcess},
	}
}

// bodies is the exhaustive round-trip corpus: one representative value per
// protocol body type the binary codec handles. Adding a protocol body
// without extending this table fails TestEveryBodyCovered.
func bodies() []any {
	return []any{
		&protocol.JobRequirements{MinMemoryMB: 512, ExpectedTasks: 32},
		&protocol.JMOffer{Node: "n1", FreeMemoryMB: 8000, ActiveJobs: 3},
		&protocol.CreateJobReq{Name: "job", Req: protocol.JobRequirements{MinMemoryMB: 1}, ClientNode: "client-1"},
		&protocol.CreateJobResp{JobID: "n1-job7"},
		&protocol.CreateTaskReq{JobID: "j", Spec: specFixture("t1"), ArchiveName: "a.jar", Archive: []byte{1, 2, 3}, Digest: "deadbeef"},
		&protocol.CreateTaskResp{Placement: "n2"},
		&protocol.TaskSolicitReq{JobID: "j", Spec: specFixture("probe")},
		&protocol.TMOffer{Node: "n3", FreeMemoryMB: 4000, RunningTasks: 2,
			ResidentDigests: []string{"d1", "d2"}, StalledTasks: 1},
		&protocol.AssignTaskReq{JobID: "j", JobManager: "n1", ClientNode: "c", Spec: specFixture("t2"), ArchiveName: "a.jar", Archive: []byte{9}, Digest: "d"},
		&protocol.AssignTaskResp{OK: true, Reason: ""},
		&protocol.CreateTasksReq{
			JobID: "j",
			Tasks: []protocol.TaskCreate{
				{Spec: specFixture("t1"), Archive: protocol.ArchiveRef{Name: "a.jar", Digest: "d1"}},
				{Spec: specFixture("t2")},
			},
			Blobs: map[string][]byte{"d1": {1, 2, 3, 4}},
		},
		&protocol.CreateTasksResp{Placements: map[string]string{"t1": "n1", "t2": "n2"}},
		&protocol.AssignTasksReq{JobID: "j", JobManager: "n1", ClientNode: "c",
			Items: []protocol.TaskCreate{{Spec: specFixture("t3"), Archive: protocol.ArchiveRef{Name: "x", Digest: "y"}}}},
		&protocol.AssignTasksResp{Rejected: map[string]string{"t3": "no memory"}, Fetched: 2},
		&protocol.FetchBlobReq{JobID: "j", Digests: []string{"d1", "d2"}},
		&protocol.FetchBlobResp{Blobs: map[string][]byte{"d1": {5, 6}}, Sizes: map[string]int64{"d2": 1 << 21}},
		&protocol.BlobChunkReq{JobID: "j", Digest: "d", Offset: 131072, MaxBytes: 65536, Total: 1 << 21, Data: []byte("chunk")},
		&protocol.BlobChunkResp{Digest: "d", Offset: 131072, Total: 1 << 21, Data: []byte("chunk"), Err: ""},
		&protocol.StartJobReq{JobID: "j", TaskNames: []string{"t1"}, Spans: []trace.Span{
			{Trace: 11, ID: 11, Name: "client.submit", Node: "client", Job: "j",
				Start: time.Unix(0, 1_700_000_000_000_000_000), Dur: 42 * time.Millisecond},
		}},
		&protocol.ExecTaskReq{JobID: "j", Task: "t1"},
		&protocol.TaskEvent{JobID: "j", Task: "t1", Node: "n1", Err: "boom", Attempt: 2, Speculative: true,
			Spans: []trace.Span{
				{Trace: 11, ID: 12, Parent: 11, Name: "tm.exec", Node: "n1", Job: "j", Task: "t1",
					Start: time.Unix(0, 1_700_000_000_100_000_000), Dur: time.Second, Err: "boom"},
			}},
		&protocol.Heartbeat{Node: "n1", Seq: 17, Beats: []protocol.TaskBeat{
			{JobID: "j", Task: "t1", Running: true, Progress: 99},
			{JobID: "j", Task: "t2", Running: false, Progress: 0},
		}},
		&protocol.HeartbeatAck{Node: "n1", Seq: 17, UnknownJobs: []string{"gone"}},
		&protocol.UserPayload{JobID: "j", FromTask: "t1", ToTask: "client", Data: []byte("payload")},
		&protocol.CancelJobReq{JobID: "j", Reason: "test", Tasks: []string{"t1", "t2"}},
		&protocol.JobEvent{JobID: "j", Failed: true, Err: "x", TaskErrs: map[string]string{"t1": "boom"}},
		&protocol.TSOpReq{JobID: "j", FromTask: "t1", ParkMS: 1000, Fields: []protocol.TSField{
			{Kind: protocol.TSString, S: "work"},
			{Kind: protocol.TSInt, I: 7},
			{Kind: protocol.TSFloat, F: 3.25},
			{Kind: protocol.TSBool, B: true},
			{Kind: protocol.TSBytes, Bytes: []byte{1, 2}},
			{Kind: protocol.TSWildcard},
			{Kind: protocol.TSTypeOf, S: "int"},
		}},
		&protocol.TSCancelReq{JobID: "j", ReqID: 12345},
		&protocol.TSOpResp{OK: true, Fields: []protocol.TSField{{Kind: protocol.TSInt64, I: -9}}},
		&protocol.DataPutReq{JobID: "j", Key: "wc/chunk/map1", Task: "split", Node: "n1",
			Digest: "abc123", Size: 1 << 20, Data: []byte("inline")},
		&protocol.DataResolveReq{JobID: "j", Key: "wc/chunk/map1", Task: "map1", ParkMS: 1000,
			StaleNode: "n9", StaleDigest: "dead"},
		&protocol.DataLocResp{Key: "wc/chunk/map1", Digest: "abc123", Node: "n1", Size: 1 << 20,
			Data: []byte{7, 8, 9}, Retry: true, Closed: true, Err: "boom"},
		&protocol.StatsPullReq{Scraper: "portal"},
		&protocol.StatsReportResp{Node: "n1", Spans: 17, Metrics: metrics.RegistrySnapshot{
			Counters: map[string]int64{"jobs_created": 4, "tasks_done": 9},
			Gauges:   map[string]int64{"free_memory_mb": 4000},
			Histograms: map[string]metrics.Summary{
				"admission_ms": {Count: 12, Mean: 1.5, Min: 0.5, Max: 4, P50: 1.25, P90: 3, P99: 3.9},
			},
		}},
	}
}

// TestRoundTripAllBodies marshals and unmarshals every protocol body and
// requires deep equality.
func TestRoundTripAllBodies(t *testing.T) {
	for _, v := range bodies() {
		name := reflect.TypeOf(v).Elem().Name()
		t.Run(name, func(t *testing.T) {
			enc, err := Default.Marshal(v)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			if enc[0] != msg.TagBinary {
				t.Fatalf("payload tag %#x, want TagBinary", enc[0])
			}
			out := reflect.New(reflect.TypeOf(v).Elem()).Interface()
			if err := Default.Unmarshal(enc, out); err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(v, out) {
				t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", v, out)
			}
		})
	}
}

// TestRoundTripByValue checks the value (non-pointer) marshal path used by
// protocol.Body call sites.
func TestRoundTripByValue(t *testing.T) {
	in := protocol.TMOffer{Node: "n9", FreeMemoryMB: 123, RunningTasks: 4,
		ResidentDigests: []string{"abc"}, StalledTasks: 2}
	enc, err := Default.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out protocol.TMOffer
	if err := Default.Unmarshal(enc, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("got %+v want %+v", out, in)
	}
}

// TestTMOfferLegacyDecodesCold: a v2 offer body (no trailing locality
// fields) must decode with nil ResidentDigests and zero StalledTasks, not
// error — the wire-compat contract for the v3 TMOffer extension.
func TestTMOfferLegacyDecodesCold(t *testing.T) {
	// Build a current encoding, then strip it down to the v2 shape: header
	// (tag, version, type id) plus the three legacy fields only, with the
	// version byte rewritten to 2.
	full, err := Default.Marshal(&protocol.TMOffer{Node: "n4", FreeMemoryMB: 512, RunningTasks: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A cold current offer still carries the trailing empty-slice count and
	// zero stall varint; drop those two trailing bytes to get the v2 body.
	legacy := append([]byte(nil), full[:len(full)-2]...)
	legacy[1] = 2
	var out protocol.TMOffer
	if err := Default.Unmarshal(legacy, &out); err != nil {
		t.Fatalf("legacy v2 offer failed to decode: %v", err)
	}
	want := protocol.TMOffer{Node: "n4", FreeMemoryMB: 512, RunningTasks: 3}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("legacy decode got %+v want %+v", out, want)
	}
}

// TestEveryBodyCovered walks the corpus through msg.EncodePayload /
// DecodePayload (the production entry points) and additionally asserts the
// binary codec actually handled each one — none silently fell back to gob.
func TestEveryBodyCovered(t *testing.T) {
	for _, v := range bodies() {
		enc, err := msg.EncodePayload(v)
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		if enc[0] != msg.TagBinary {
			t.Errorf("%T fell back to gob (tag %#x)", v, enc[0])
			continue
		}
		out := reflect.New(reflect.TypeOf(v).Elem()).Interface()
		if err := msg.DecodePayload(enc, out); err != nil {
			t.Fatalf("%T decode: %v", v, err)
		}
		if !reflect.DeepEqual(v, out) {
			t.Errorf("%T mismatch through msg seam", v)
		}
	}
}

// userStruct is an arbitrary application type the codec cannot handle.
type userStruct struct {
	A string
	B []int
}

// TestMixedGobBinaryCompat verifies the KindUser contract: application
// payload types fall back to tagged gob and decode through the same
// DecodePayload entry point that handles binary protocol bodies.
func TestMixedGobBinaryCompat(t *testing.T) {
	app := userStruct{A: "x", B: []int{1, 2, 3}}
	gobEnc, err := msg.EncodePayload(app)
	if err != nil {
		t.Fatal(err)
	}
	if gobEnc[0] != msg.TagGob {
		t.Fatalf("application payload tag %#x, want TagGob", gobEnc[0])
	}
	var appOut userStruct
	if err := msg.DecodePayload(gobEnc, &appOut); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(app, appOut) {
		t.Errorf("gob round trip mismatch: %+v", appOut)
	}

	// A protocol body wrapping that user data stays binary, and the user
	// bytes inside survive verbatim.
	up := &protocol.UserPayload{JobID: "j", FromTask: "t", ToTask: "client", Data: gobEnc}
	binEnc, err := msg.EncodePayload(up)
	if err != nil {
		t.Fatal(err)
	}
	if binEnc[0] != msg.TagBinary {
		t.Fatalf("UserPayload tag %#x, want TagBinary", binEnc[0])
	}
	var upOut protocol.UserPayload
	if err := msg.DecodePayload(binEnc, &upOut); err != nil {
		t.Fatal(err)
	}
	var inner userStruct
	if err := msg.DecodePayload(upOut.Data, &inner); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(app, inner) {
		t.Errorf("nested gob payload mismatch: %+v", inner)
	}
}

// TestUnmarshalTypeMismatch: decoding into the wrong body type must error,
// not mis-parse.
func TestUnmarshalTypeMismatch(t *testing.T) {
	enc, err := Default.Marshal(&protocol.JMOffer{Node: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	var wrong protocol.TMOffer
	if err := Default.Unmarshal(enc, &wrong); err == nil {
		t.Error("decoding JMOffer bytes into TMOffer succeeded")
	}
}

// TestMessageRoundTrip covers the envelope framing.
func TestMessageRoundTrip(t *testing.T) {
	m := msg.New(msg.KindHeartbeat,
		msg.Address{Node: "n1"},
		msg.Address{Node: "n2", Job: "j", Task: "t"},
		msg.MustEncode(protocol.Heartbeat{Node: "n1", Seq: 3}))
	m.CorrelID = 77
	m.SetHeader("k", "v")
	m.Time = time.Unix(0, m.Time.UnixNano()) // strip the monotonic clock

	frame, err := AppendFrame(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	body := frame[FrameHeaderBytes:]
	got, err := DecodeFrameBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("envelope mismatch:\n in: %+v\nout: %+v", m, got)
	}
	if EncodedSize(m) != len(body) {
		t.Errorf("EncodedSize = %d, frame body is %d", EncodedSize(m), len(body))
	}
	if SizeOf(m) != len(body) {
		t.Errorf("SizeOf = %d, frame body is %d", SizeOf(m), len(body))
	}
}

// TestSizeOfMatchesEncoding: the arithmetic size must agree with the real
// encoding for a spread of messages (headers, empty fields, big payloads,
// zero time).
func TestSizeOfMatchesEncoding(t *testing.T) {
	msgs := []*msg.Message{
		{ID: 1, Kind: msg.KindPing},
		msg.New(msg.KindUser, msg.Address{Node: "a", Job: "j", Task: "t"}, msg.Address{Node: "b"}, make([]byte, 200_000)),
		msg.New(msg.KindTSOut, msg.Address{Node: "x"}, msg.Address{}, nil).SetHeader("cn-routed", "1").SetHeader("k2", "v2"),
	}
	for i, m := range msgs {
		if got, want := SizeOf(m), EncodedSize(m); got != want {
			t.Errorf("message %d: SizeOf = %d, EncodedSize = %d", i, got, want)
		}
	}
}

// TestZeroTimeRoundTrip: the zero send time must survive the envelope.
func TestZeroTimeRoundTrip(t *testing.T) {
	m := &msg.Message{ID: 1, Kind: msg.KindPing}
	frame, err := AppendFrame(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrameBody(frame[FrameHeaderBytes:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.IsZero() {
		t.Errorf("zero time decoded as %v", got.Time)
	}
}

// TestFrameTooLarge: a message over MaxFrameBytes must fail at the sender
// without emitting anything.
func TestFrameTooLarge(t *testing.T) {
	m := msg.New(msg.KindUser, msg.Address{}, msg.Address{}, make([]byte, MaxFrameBytes+1))
	out, err := AppendFrame([]byte("prefix"), m)
	if err == nil {
		t.Fatal("oversized frame encoded")
	}
	if string(out) != "prefix" {
		t.Errorf("dst not truncated back on failure: %d bytes", len(out))
	}
}

// TestCheckFrameLen guards the inbound allocation path.
func TestCheckFrameLen(t *testing.T) {
	if err := CheckFrameLen(0); err == nil {
		t.Error("zero-length frame accepted")
	}
	if err := CheckFrameLen(MaxFrameBytes + 1); err == nil {
		t.Error("oversized frame accepted")
	}
	if err := CheckFrameLen(1024); err != nil {
		t.Errorf("valid length rejected: %v", err)
	}
}

// TestBinaryBeatsGobOnSize is the codec's reason to exist: for the hot
// message kinds, the binary payload must be smaller than the gob baseline
// (a fresh encoder per payload, as the old EncodePayload behaved).
func TestBinaryBeatsGobOnSize(t *testing.T) {
	for _, v := range []any{
		&protocol.Heartbeat{Node: "node1", Seq: 12, Beats: []protocol.TaskBeat{
			{JobID: "node1-job1", Task: "t01", Running: true, Progress: 40},
			{JobID: "node1-job1", Task: "t02", Running: true, Progress: 12},
		}},
		&protocol.AssignTasksReq{JobID: "node1-job1", JobManager: "node1", ClientNode: "client-1",
			Items: []protocol.TaskCreate{{Spec: specFixture("t1"), Archive: protocol.ArchiveRef{Name: "a.jar", Digest: "d"}}}},
		&protocol.TSOpReq{JobID: "node1-job1", FromTask: "w1", ParkMS: 1000,
			Fields: []protocol.TSField{{Kind: protocol.TSString, S: "work"}, {Kind: protocol.TSInt, I: 3}}},
	} {
		bin, err := Default.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		gobEnc := gobBaseline(t, v)
		if len(bin) >= len(gobEnc) {
			t.Errorf("%T: binary %dB >= gob %dB", v, len(bin), len(gobEnc))
		}
	}
}
