// Package wire implements CN's hand-rolled binary wire format: a
// versioned, length-delimited encoding for the protocol's well-defined
// message bodies and for the message envelope itself.
//
// Every protocol layer — discovery, placement, assignment, heartbeats,
// tuple-space ops — rides the same message fabric, so codec cost taxes the
// whole system. The previous gob path built a fresh reflection-based
// encoder per payload and re-transmitted full type descriptors on every
// single message; this package replaces it with per-type append-based
// marshal/unmarshal over pooled buffers. Gob remains only as the fallback
// for arbitrary user-defined (KindUser) application payloads, selected by
// a one-byte payload tag (msg.TagGob / msg.TagBinary).
//
// Layout primitives: unsigned varints (uvarint), zig-zag signed varints,
// and uvarint-length-prefixed strings and byte slices. Every read is
// bounds-checked and returns an error — malformed input must never panic,
// byte slices only ever alias the input, and collection decodes cap their
// upfront allocation so a corrupted count cannot balloon memory before
// the first bad element is detected.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Version is the wire-format version carried in every frame header and
// binary payload header. Version 2 added the optional trailing trace
// context to the message envelope; version 3 added the trailing locality
// fields (resident digests, stall count) to the TMOffer body. A receiver
// accepts every version in [MinVersion, Version] and rejects the rest;
// bumping the pair is the negotiation story for format changes (see
// docs/WIRE.md).
const Version = 3

// MinVersion is the oldest frame version a receiver still accepts. A v1
// frame is a v2 frame without the optional trailing trace context, so
// decoding is uniform across the accepted range.
const MinVersion = 1

// MaxFrameBytes bounds one transport frame (envelope + payload). Senders
// refuse to emit larger frames and receivers drop the connection on a
// larger announced length, so a corrupt or hostile stream cannot force an
// unbounded allocation. Archive blobs larger than this move in
// protocol.BlobChunkBytes-sized chunks instead of one message.
const MaxFrameBytes = 1 << 20

// Frame magic bytes: the first two bytes of every frame body.
const (
	Magic0 = 'C'
	Magic1 = 'N'
)

// ErrFrameTooLarge is returned by AppendFrame when the encoded message
// exceeds MaxFrameBytes; the send fails without poisoning the connection.
var ErrFrameTooLarge = fmt.Errorf("wire: frame exceeds %d bytes", MaxFrameBytes)

// bufPool recycles encode scratch buffers across sends; buffers that grew
// past MaxFrameBytes are dropped rather than pinned in the pool.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf borrows a zero-length scratch buffer from the pool.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a scratch buffer to the pool.
func PutBuf(b *[]byte) {
	if cap(*b) > MaxFrameBytes {
		return
	}
	bufPool.Put(b)
}

// AppendUvarint appends u as an unsigned varint.
func AppendUvarint(dst []byte, u uint64) []byte {
	return binary.AppendUvarint(dst, u)
}

// AppendVarint appends i as a zig-zag signed varint.
func AppendVarint(dst []byte, i int64) []byte {
	return binary.AppendVarint(dst, i)
}

// AppendBool appends a one-byte boolean.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendFloat64 appends the IEEE-754 bits little-endian.
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendString appends a uvarint length followed by the string bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a uvarint length followed by the slice bytes. A nil
// slice and an empty slice both encode as length zero and decode as nil.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Reader is a bounds-checked cursor over an encoded buffer. Decoded byte
// slices alias the input buffer; callers that reuse the buffer must copy.
type Reader struct {
	b   []byte
	off int
}

// NewReader wraps b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Len reports how many bytes remain unread.
func (r *Reader) Len() int { return len(r.b) - r.off }

func (r *Reader) errTruncated(what string) error {
	return fmt.Errorf("wire: truncated %s at offset %d", what, r.off)
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, r.errTruncated("uvarint")
	}
	r.off += n
	return u, nil
}

// Varint reads a zig-zag signed varint.
func (r *Reader) Varint() (int64, error) {
	i, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, r.errTruncated("varint")
	}
	r.off += n
	return i, nil
}

// Int reads a varint-encoded int.
func (r *Reader) Int() (int, error) {
	i, err := r.Varint()
	return int(i), err
}

// Bool reads a one-byte boolean.
func (r *Reader) Bool() (bool, error) {
	if r.off >= len(r.b) {
		return false, r.errTruncated("bool")
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		return false, fmt.Errorf("wire: invalid bool byte %#x at offset %d", v, r.off-1)
	}
	return v == 1, nil
}

// Float64 reads IEEE-754 bits little-endian.
func (r *Reader) Float64() (float64, error) {
	if r.Len() < 8 {
		return 0, r.errTruncated("float64")
	}
	u := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(u), nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	b, err := r.Bytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Bytes reads a length-prefixed byte slice aliasing the input buffer. A
// zero length decodes as nil.
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	// The announced length can never exceed what is actually present, so a
	// corrupted length cannot drive an allocation: the slice aliases input.
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("wire: byte-slice length %d exceeds remaining %d at offset %d", n, r.Len(), r.off)
	}
	if n == 0 {
		return nil, nil
	}
	b := r.b[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// Count reads a collection length and sanity-checks it against the bytes
// remaining (each element costs at least one byte on the wire), so a
// corrupted count cannot drive a huge make().
func (r *Reader) Count(what string) (int, error) {
	n, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.Len()) {
		return 0, fmt.Errorf("wire: %s count %d exceeds remaining %d bytes", what, n, r.Len())
	}
	return int(n), nil
}
