// Message-envelope framing: the transport's unit of transmission is a
// length-prefixed binary frame holding one msg.Message. The frame body
// starts with the magic bytes and the format version, so a receiver can
// reject foreign or incompatible streams before trusting any length it
// reads; body length is bounded by MaxFrameBytes at both ends.
//
//	frame   := len(uint32 BE) body
//	body    := 'C' 'N' version envelope
//	envelope:= id kind correlID from to time headers payload [trace]
//	trace   := traceID spanID parentID   (uvarints; present iff traced)

package wire

import (
	"encoding/binary"
	"fmt"
	"time"

	"cn/internal/msg"
	"cn/internal/trace"
)

// FrameHeaderBytes is the length-prefix size preceding every frame body.
const FrameHeaderBytes = 4

// frameBodyMin is the smallest valid frame body: magic + version alone.
const frameBodyMin = 3

// maxHeaderEntries bounds a message's header map on decode; CN headers are
// small string metadata, never bulk data.
const maxHeaderEntries = 1024

// AppendMessage appends m's binary envelope (without the frame length
// prefix or magic) to dst. The payload rides verbatim; it is already
// encoded and self-tagged.
func AppendMessage(dst []byte, m *msg.Message) []byte {
	dst = AppendUvarint(dst, m.ID)
	dst = AppendUvarint(dst, uint64(m.Kind))
	dst = AppendUvarint(dst, m.CorrelID)
	dst = appendAddress(dst, m.From)
	dst = appendAddress(dst, m.To)
	// The zero time encodes as 0 so it round-trips exactly; real send
	// timestamps are always far from the epoch.
	var nanos int64
	if !m.Time.IsZero() {
		nanos = m.Time.UnixNano()
	}
	dst = AppendVarint(dst, nanos)
	dst = AppendUvarint(dst, uint64(len(m.Headers)))
	if len(m.Headers) > 0 {
		// Header order does not matter on the wire; iteration order is fine
		// and avoids a sort on the hot path.
		for k, v := range m.Headers {
			dst = AppendString(dst, k)
			dst = AppendString(dst, v)
		}
	}
	dst = AppendBytes(dst, m.Payload)
	// The trace context is the envelope's only optional field: untraced
	// messages (the common case at default sampling) pay zero bytes, and a
	// v1 envelope is exactly a v2 envelope with the field absent.
	if !m.Trace.IsZero() {
		dst = AppendUvarint(dst, m.Trace.TraceID)
		dst = AppendUvarint(dst, m.Trace.SpanID)
		dst = AppendUvarint(dst, m.Trace.ParentID)
	}
	return dst
}

func appendAddress(dst []byte, a msg.Address) []byte {
	dst = AppendString(dst, a.Node)
	dst = AppendString(dst, a.Job)
	return AppendString(dst, a.Task)
}

// DecodeMessage parses a binary envelope produced by AppendMessage. The
// returned message's Payload aliases b; callers that recycle b must copy.
// Malformed input returns an error, never panics.
func DecodeMessage(b []byte) (*msg.Message, error) {
	r := NewReader(b)
	m := &msg.Message{}
	var err error
	if m.ID, err = r.Uvarint(); err != nil {
		return nil, err
	}
	kind, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if kind > uint64(msg.KindCount)*16 {
		// Unknown kinds are tolerated (skew within reason), absurd ones are
		// corruption.
		return nil, fmt.Errorf("wire: implausible message kind %d", kind)
	}
	m.Kind = msg.Kind(kind)
	if m.CorrelID, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if m.From, err = readAddress(r); err != nil {
		return nil, err
	}
	if m.To, err = readAddress(r); err != nil {
		return nil, err
	}
	nanos, err := r.Varint()
	if err != nil {
		return nil, err
	}
	if nanos != 0 {
		m.Time = time.Unix(0, nanos)
	}
	nh, err := r.Count("headers")
	if err != nil {
		return nil, err
	}
	if nh > maxHeaderEntries {
		return nil, fmt.Errorf("wire: %d header entries exceed limit", nh)
	}
	if nh > 0 {
		m.Headers = make(map[string]string, nh)
		for i := 0; i < nh; i++ {
			k, err := r.String()
			if err != nil {
				return nil, err
			}
			v, err := r.String()
			if err != nil {
				return nil, err
			}
			m.Headers[k] = v
		}
	}
	if m.Payload, err = r.Bytes(); err != nil {
		return nil, err
	}
	if r.Len() > 0 {
		// Optional trailing trace context (v2). Its absence is the v1
		// layout, so one decode path serves the whole accepted range.
		var tc trace.Context
		if tc.TraceID, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if tc.SpanID, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if tc.ParentID, err = r.Uvarint(); err != nil {
			return nil, err
		}
		m.Trace = tc
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after message envelope", r.Len())
	}
	return m, nil
}

func readAddress(r *Reader) (msg.Address, error) {
	var a msg.Address
	var err error
	if a.Node, err = r.String(); err != nil {
		return a, err
	}
	if a.Job, err = r.String(); err != nil {
		return a, err
	}
	a.Task, err = r.String()
	return a, err
}

// AppendFrame appends the complete frame (length prefix, magic, version,
// envelope) for m. When the body would exceed MaxFrameBytes it returns dst
// truncated back to its original length and ErrFrameTooLarge — the send
// fails cleanly without corrupting the stream.
func AppendFrame(dst []byte, m *msg.Message) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, Magic0, Magic1, Version)
	dst = AppendMessage(dst, m)
	body := len(dst) - start - FrameHeaderBytes
	if body > MaxFrameBytes {
		return dst[:start], fmt.Errorf("%w (message %s is %d bytes)", ErrFrameTooLarge, m.Kind, body)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(body))
	return dst, nil
}

// CheckFrameLen validates an announced frame-body length before any
// allocation happens for it.
func CheckFrameLen(n uint32) error {
	if n < frameBodyMin {
		return fmt.Errorf("wire: frame body length %d below minimum %d", n, frameBodyMin)
	}
	if n > MaxFrameBytes {
		return fmt.Errorf("wire: frame body length %d exceeds MaxFrameBytes %d", n, MaxFrameBytes)
	}
	return nil
}

// DecodeFrameBody parses a frame body (after the length prefix): magic,
// version, then the message envelope.
func DecodeFrameBody(body []byte) (*msg.Message, error) {
	if len(body) < frameBodyMin {
		return nil, fmt.Errorf("wire: frame body too short (%d bytes)", len(body))
	}
	if body[0] != Magic0 || body[1] != Magic1 {
		return nil, fmt.Errorf("wire: bad frame magic %#x %#x", body[0], body[1])
	}
	if body[2] < MinVersion || body[2] > Version {
		return nil, fmt.Errorf("wire: frame version %d not supported (want %d..%d)", body[2], MinVersion, Version)
	}
	return DecodeMessage(body[3:])
}

// EncodedSize returns the frame-body size m would occupy on the wire by
// actually encoding it into a pooled scratch buffer. SizeOf computes the
// same figure arithmetically; this form is kept as the test oracle.
func EncodedSize(m *msg.Message) int {
	buf := GetBuf()
	*buf = AppendMessage((*buf)[:0], m)
	n := len(*buf) + frameBodyMin
	PutBuf(buf)
	return n
}

// uvarintLen is the encoded width of u as an unsigned varint.
func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// varintLen is the encoded width of i as a zig-zag signed varint.
func varintLen(i int64) int {
	return uvarintLen(uint64(i)<<1 ^ uint64(i>>63))
}

func stringLen(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

func addressLen(a msg.Address) int {
	return stringLen(a.Node) + stringLen(a.Job) + stringLen(a.Task)
}

// SizeOf computes the frame-body size m would occupy on the wire without
// materializing any bytes — O(fields) instead of an O(payload) copy. It
// mirrors AppendMessage's layout exactly (asserted by the wire tests) and
// is the MemNetwork's byte-accounting path: the simulated fabric charges
// real frame sizes without paying real encoding.
func SizeOf(m *msg.Message) int {
	n := frameBodyMin
	n += uvarintLen(m.ID)
	n += uvarintLen(uint64(m.Kind))
	n += uvarintLen(m.CorrelID)
	n += addressLen(m.From)
	n += addressLen(m.To)
	var nanos int64
	if !m.Time.IsZero() {
		nanos = m.Time.UnixNano()
	}
	n += varintLen(nanos)
	n += uvarintLen(uint64(len(m.Headers)))
	for k, v := range m.Headers {
		n += stringLen(k) + stringLen(v)
	}
	n += uvarintLen(uint64(len(m.Payload))) + len(m.Payload)
	if !m.Trace.IsZero() {
		n += uvarintLen(m.Trace.TraceID)
		n += uvarintLen(m.Trace.SpanID)
		n += uvarintLen(m.Trace.ParentID)
	}
	return n
}
