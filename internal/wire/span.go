// Binary encoding for trace spans. Exported (unlike the per-body payload
// encoders) because spans ride two different envelopes: protocol bodies
// (TaskEvent, StartJobReq) and the JobManager's opaque checkpoint image,
// which must stay byte-compatible with each other.

package wire

import (
	"fmt"
	"time"

	"cn/internal/trace"
)

// MaxSpansPerMessage bounds a decoded span list; span piggybacking is
// telemetry, never bulk data.
const MaxSpansPerMessage = 4096

// AppendSpan appends one span's binary encoding.
func AppendSpan(dst []byte, s trace.Span) []byte {
	dst = AppendUvarint(dst, s.Trace)
	dst = AppendUvarint(dst, s.ID)
	dst = AppendUvarint(dst, s.Parent)
	dst = AppendString(dst, s.Name)
	dst = AppendString(dst, s.Node)
	dst = AppendString(dst, s.Job)
	dst = AppendString(dst, s.Task)
	var nanos int64
	if !s.Start.IsZero() {
		nanos = s.Start.UnixNano()
	}
	dst = AppendVarint(dst, nanos)
	dst = AppendVarint(dst, int64(s.Dur))
	return AppendString(dst, s.Err)
}

// ReadSpan decodes one span.
func ReadSpan(r *Reader) (trace.Span, error) {
	var s trace.Span
	var err error
	if s.Trace, err = r.Uvarint(); err != nil {
		return s, err
	}
	if s.ID, err = r.Uvarint(); err != nil {
		return s, err
	}
	if s.Parent, err = r.Uvarint(); err != nil {
		return s, err
	}
	if s.Name, err = r.String(); err != nil {
		return s, err
	}
	if s.Node, err = r.String(); err != nil {
		return s, err
	}
	if s.Job, err = r.String(); err != nil {
		return s, err
	}
	if s.Task, err = r.String(); err != nil {
		return s, err
	}
	nanos, err := r.Varint()
	if err != nil {
		return s, err
	}
	if nanos != 0 {
		s.Start = time.Unix(0, nanos)
	}
	dur, err := r.Varint()
	if err != nil {
		return s, err
	}
	s.Dur = time.Duration(dur)
	s.Err, err = r.String()
	return s, err
}

// AppendSpans appends a length-prefixed span list.
func AppendSpans(dst []byte, spans []trace.Span) []byte {
	dst = AppendUvarint(dst, uint64(len(spans)))
	for _, s := range spans {
		dst = AppendSpan(dst, s)
	}
	return dst
}

// ReadSpans decodes a length-prefixed span list (nil when empty).
func ReadSpans(r *Reader) ([]trace.Span, error) {
	n, err := r.Count("spans")
	if err != nil || n == 0 {
		return nil, err
	}
	if n > MaxSpansPerMessage {
		return nil, fmt.Errorf("wire: %d spans exceed limit %d", n, MaxSpansPerMessage)
	}
	out := make([]trace.Span, 0, capHint(n))
	for i := 0; i < n; i++ {
		s, err := ReadSpan(r)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
