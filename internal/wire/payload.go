// Per-type binary marshal/unmarshal for every well-defined protocol body.
// Each payload is [msg.TagBinary][Version][type id uvarint][fields...],
// with fields appended in struct declaration order. Map keys are sorted so
// identical values encode identically (stable tests, comparable benches).
//
// The codec registers itself with the msg package at init, becoming the
// process-wide payload codec for every component that links the transport;
// types without a hand-rolled encoder (arbitrary KindUser application
// payloads) report msg.ErrUnsupportedPayload and fall back to tagged gob.

package wire

import (
	"fmt"
	"sort"

	"cn/internal/metrics"
	"cn/internal/msg"
	"cn/internal/protocol"
	"cn/internal/task"
)

// Payload type ids. Append only: a type id is part of the wire format.
const (
	tInvalid uint64 = iota
	tJobRequirements
	tJMOffer
	tCreateJobReq
	tCreateJobResp
	tCreateTaskReq
	tCreateTaskResp
	tTaskSolicitReq
	tTMOffer
	tAssignTaskReq
	tAssignTaskResp
	tCreateTasksReq
	tCreateTasksResp
	tAssignTasksReq
	tAssignTasksResp
	tFetchBlobReq
	tFetchBlobResp
	tBlobChunkReq
	tBlobChunkResp
	tStartJobReq
	tExecTaskReq
	tTaskEvent
	tHeartbeat
	tHeartbeatAck
	tUserPayload
	tCancelJobReq
	tJobEvent
	tTSOpReq
	tTSCancelReq
	tTSOpResp
	tDataPutReq
	tDataResolveReq
	tDataLocResp
	tStatsPullReq
	tStatsReportResp
)

// Codec is the msg.Codec implementation; Default is the instance the init
// hook registers and benchmarks reference explicitly.
type Codec struct{}

// Default is the shared codec instance.
var Default Codec

func init() { msg.SetCodec(Default) }

// header starts a binary payload for the given type id.
func header(dst []byte, typeID uint64) []byte {
	dst = append(dst, msg.TagBinary, Version)
	return AppendUvarint(dst, typeID)
}

// capHint bounds the UPFRONT capacity of a decoded collection. Counts are
// already sanity-checked against the bytes remaining, but one wire byte
// can announce an element that decodes into a much larger struct, so a
// hostile count inside a legal frame could otherwise drive a huge make()
// before the first element fails to parse. Decoders allocate at most this
// many elements eagerly and grow by append for genuinely large payloads.
func capHint(n int) int {
	const maxEager = 1024
	if n > maxEager {
		return maxEager
	}
	return n
}

// Marshal implements msg.Codec.
func (Codec) Marshal(v any) ([]byte, error) {
	// Pre-size generously for small bodies; large bodies (blob chunks)
	// re-size once via the length hints below.
	switch x := v.(type) {
	case protocol.JobRequirements:
		return appendJobRequirements(header(make([]byte, 0, 32), tJobRequirements), &x), nil
	case *protocol.JobRequirements:
		return appendJobRequirements(header(make([]byte, 0, 32), tJobRequirements), x), nil
	case protocol.JMOffer:
		return appendJMOffer(header(make([]byte, 0, 64), tJMOffer), &x), nil
	case *protocol.JMOffer:
		return appendJMOffer(header(make([]byte, 0, 64), tJMOffer), x), nil
	case protocol.CreateJobReq:
		return appendCreateJobReq(header(make([]byte, 0, 128), tCreateJobReq), &x), nil
	case *protocol.CreateJobReq:
		return appendCreateJobReq(header(make([]byte, 0, 128), tCreateJobReq), x), nil
	case protocol.CreateJobResp:
		return appendCreateJobResp(header(make([]byte, 0, 64), tCreateJobResp), &x), nil
	case *protocol.CreateJobResp:
		return appendCreateJobResp(header(make([]byte, 0, 64), tCreateJobResp), x), nil
	case protocol.CreateTaskReq:
		return appendCreateTaskReq(header(make([]byte, 0, 256+len(x.Archive)), tCreateTaskReq), &x), nil
	case *protocol.CreateTaskReq:
		return appendCreateTaskReq(header(make([]byte, 0, 256+len(x.Archive)), tCreateTaskReq), x), nil
	case protocol.CreateTaskResp:
		return appendCreateTaskResp(header(make([]byte, 0, 64), tCreateTaskResp), &x), nil
	case *protocol.CreateTaskResp:
		return appendCreateTaskResp(header(make([]byte, 0, 64), tCreateTaskResp), x), nil
	case protocol.TaskSolicitReq:
		return appendTaskSolicitReq(header(make([]byte, 0, 256), tTaskSolicitReq), &x), nil
	case *protocol.TaskSolicitReq:
		return appendTaskSolicitReq(header(make([]byte, 0, 256), tTaskSolicitReq), x), nil
	case protocol.TMOffer:
		return appendTMOffer(header(make([]byte, 0, 64), tTMOffer), &x), nil
	case *protocol.TMOffer:
		return appendTMOffer(header(make([]byte, 0, 64), tTMOffer), x), nil
	case protocol.AssignTaskReq:
		return appendAssignTaskReq(header(make([]byte, 0, 256+len(x.Archive)), tAssignTaskReq), &x), nil
	case *protocol.AssignTaskReq:
		return appendAssignTaskReq(header(make([]byte, 0, 256+len(x.Archive)), tAssignTaskReq), x), nil
	case protocol.AssignTaskResp:
		return appendAssignTaskResp(header(make([]byte, 0, 64), tAssignTaskResp), &x), nil
	case *protocol.AssignTaskResp:
		return appendAssignTaskResp(header(make([]byte, 0, 64), tAssignTaskResp), x), nil
	case protocol.CreateTasksReq:
		return appendCreateTasksReq(header(make([]byte, 0, 512), tCreateTasksReq), &x), nil
	case *protocol.CreateTasksReq:
		return appendCreateTasksReq(header(make([]byte, 0, 512), tCreateTasksReq), x), nil
	case protocol.CreateTasksResp:
		return appendCreateTasksResp(header(make([]byte, 0, 256), tCreateTasksResp), &x), nil
	case *protocol.CreateTasksResp:
		return appendCreateTasksResp(header(make([]byte, 0, 256), tCreateTasksResp), x), nil
	case protocol.AssignTasksReq:
		return appendAssignTasksReq(header(make([]byte, 0, 512), tAssignTasksReq), &x), nil
	case *protocol.AssignTasksReq:
		return appendAssignTasksReq(header(make([]byte, 0, 512), tAssignTasksReq), x), nil
	case protocol.AssignTasksResp:
		return appendAssignTasksResp(header(make([]byte, 0, 128), tAssignTasksResp), &x), nil
	case *protocol.AssignTasksResp:
		return appendAssignTasksResp(header(make([]byte, 0, 128), tAssignTasksResp), x), nil
	case protocol.FetchBlobReq:
		return appendFetchBlobReq(header(make([]byte, 0, 128), tFetchBlobReq), &x), nil
	case *protocol.FetchBlobReq:
		return appendFetchBlobReq(header(make([]byte, 0, 128), tFetchBlobReq), x), nil
	case protocol.FetchBlobResp:
		return appendFetchBlobResp(header(make([]byte, 0, 256), tFetchBlobResp), &x), nil
	case *protocol.FetchBlobResp:
		return appendFetchBlobResp(header(make([]byte, 0, 256), tFetchBlobResp), x), nil
	case protocol.BlobChunkReq:
		return appendBlobChunkReq(header(make([]byte, 0, 128+len(x.Data)), tBlobChunkReq), &x), nil
	case *protocol.BlobChunkReq:
		return appendBlobChunkReq(header(make([]byte, 0, 128+len(x.Data)), tBlobChunkReq), x), nil
	case protocol.BlobChunkResp:
		return appendBlobChunkResp(header(make([]byte, 0, 128+len(x.Data)), tBlobChunkResp), &x), nil
	case *protocol.BlobChunkResp:
		return appendBlobChunkResp(header(make([]byte, 0, 128+len(x.Data)), tBlobChunkResp), x), nil
	case protocol.StartJobReq:
		return appendStartJobReq(header(make([]byte, 0, 128), tStartJobReq), &x), nil
	case *protocol.StartJobReq:
		return appendStartJobReq(header(make([]byte, 0, 128), tStartJobReq), x), nil
	case protocol.ExecTaskReq:
		return appendExecTaskReq(header(make([]byte, 0, 64), tExecTaskReq), &x), nil
	case *protocol.ExecTaskReq:
		return appendExecTaskReq(header(make([]byte, 0, 64), tExecTaskReq), x), nil
	case protocol.TaskEvent:
		return appendTaskEvent(header(make([]byte, 0, 128), tTaskEvent), &x), nil
	case *protocol.TaskEvent:
		return appendTaskEvent(header(make([]byte, 0, 128), tTaskEvent), x), nil
	case protocol.Heartbeat:
		return appendHeartbeat(header(make([]byte, 0, 64+48*len(x.Beats)), tHeartbeat), &x), nil
	case *protocol.Heartbeat:
		return appendHeartbeat(header(make([]byte, 0, 64+48*len(x.Beats)), tHeartbeat), x), nil
	case protocol.HeartbeatAck:
		return appendHeartbeatAck(header(make([]byte, 0, 64), tHeartbeatAck), &x), nil
	case *protocol.HeartbeatAck:
		return appendHeartbeatAck(header(make([]byte, 0, 64), tHeartbeatAck), x), nil
	case protocol.UserPayload:
		return appendUserPayload(header(make([]byte, 0, 64+len(x.Data)), tUserPayload), &x), nil
	case *protocol.UserPayload:
		return appendUserPayload(header(make([]byte, 0, 64+len(x.Data)), tUserPayload), x), nil
	case protocol.CancelJobReq:
		return appendCancelJobReq(header(make([]byte, 0, 128), tCancelJobReq), &x), nil
	case *protocol.CancelJobReq:
		return appendCancelJobReq(header(make([]byte, 0, 128), tCancelJobReq), x), nil
	case protocol.JobEvent:
		return appendJobEvent(header(make([]byte, 0, 128), tJobEvent), &x), nil
	case *protocol.JobEvent:
		return appendJobEvent(header(make([]byte, 0, 128), tJobEvent), x), nil
	case protocol.TSOpReq:
		return appendTSOpReq(header(make([]byte, 0, 128), tTSOpReq), &x), nil
	case *protocol.TSOpReq:
		return appendTSOpReq(header(make([]byte, 0, 128), tTSOpReq), x), nil
	case protocol.TSCancelReq:
		return appendTSCancelReq(header(make([]byte, 0, 64), tTSCancelReq), &x), nil
	case *protocol.TSCancelReq:
		return appendTSCancelReq(header(make([]byte, 0, 64), tTSCancelReq), x), nil
	case protocol.TSOpResp:
		return appendTSOpResp(header(make([]byte, 0, 128), tTSOpResp), &x), nil
	case *protocol.TSOpResp:
		return appendTSOpResp(header(make([]byte, 0, 128), tTSOpResp), x), nil
	case protocol.DataPutReq:
		return appendDataPutReq(header(make([]byte, 0, 192+len(x.Data)), tDataPutReq), &x), nil
	case *protocol.DataPutReq:
		return appendDataPutReq(header(make([]byte, 0, 192+len(x.Data)), tDataPutReq), x), nil
	case protocol.DataResolveReq:
		return appendDataResolveReq(header(make([]byte, 0, 192), tDataResolveReq), &x), nil
	case *protocol.DataResolveReq:
		return appendDataResolveReq(header(make([]byte, 0, 192), tDataResolveReq), x), nil
	case protocol.DataLocResp:
		return appendDataLocResp(header(make([]byte, 0, 192+len(x.Data)), tDataLocResp), &x), nil
	case *protocol.DataLocResp:
		return appendDataLocResp(header(make([]byte, 0, 192+len(x.Data)), tDataLocResp), x), nil
	case protocol.StatsPullReq:
		return appendStatsPullReq(header(make([]byte, 0, 64), tStatsPullReq), &x), nil
	case *protocol.StatsPullReq:
		return appendStatsPullReq(header(make([]byte, 0, 64), tStatsPullReq), x), nil
	case protocol.StatsReportResp:
		return appendStatsReportResp(header(make([]byte, 0, 512), tStatsReportResp), &x), nil
	case *protocol.StatsReportResp:
		return appendStatsReportResp(header(make([]byte, 0, 512), tStatsReportResp), x), nil
	}
	return nil, msg.ErrUnsupportedPayload
}

// Unmarshal implements msg.Codec: out selects the expected body type, and
// the payload's type id must agree.
func (Codec) Unmarshal(data []byte, out any) error {
	r, gotID, err := openPayload(data)
	if err != nil {
		return err
	}
	var wantID uint64
	var decode func(*Reader) error
	switch x := out.(type) {
	case *protocol.JobRequirements:
		wantID, decode = tJobRequirements, func(r *Reader) error { return readJobRequirements(r, x) }
	case *protocol.JMOffer:
		wantID, decode = tJMOffer, func(r *Reader) error { return readJMOffer(r, x) }
	case *protocol.CreateJobReq:
		wantID, decode = tCreateJobReq, func(r *Reader) error { return readCreateJobReq(r, x) }
	case *protocol.CreateJobResp:
		wantID, decode = tCreateJobResp, func(r *Reader) error { return readCreateJobResp(r, x) }
	case *protocol.CreateTaskReq:
		wantID, decode = tCreateTaskReq, func(r *Reader) error { return readCreateTaskReq(r, x) }
	case *protocol.CreateTaskResp:
		wantID, decode = tCreateTaskResp, func(r *Reader) error { return readCreateTaskResp(r, x) }
	case *protocol.TaskSolicitReq:
		wantID, decode = tTaskSolicitReq, func(r *Reader) error { return readTaskSolicitReq(r, x) }
	case *protocol.TMOffer:
		wantID, decode = tTMOffer, func(r *Reader) error { return readTMOffer(r, x) }
	case *protocol.AssignTaskReq:
		wantID, decode = tAssignTaskReq, func(r *Reader) error { return readAssignTaskReq(r, x) }
	case *protocol.AssignTaskResp:
		wantID, decode = tAssignTaskResp, func(r *Reader) error { return readAssignTaskResp(r, x) }
	case *protocol.CreateTasksReq:
		wantID, decode = tCreateTasksReq, func(r *Reader) error { return readCreateTasksReq(r, x) }
	case *protocol.CreateTasksResp:
		wantID, decode = tCreateTasksResp, func(r *Reader) error { return readCreateTasksResp(r, x) }
	case *protocol.AssignTasksReq:
		wantID, decode = tAssignTasksReq, func(r *Reader) error { return readAssignTasksReq(r, x) }
	case *protocol.AssignTasksResp:
		wantID, decode = tAssignTasksResp, func(r *Reader) error { return readAssignTasksResp(r, x) }
	case *protocol.FetchBlobReq:
		wantID, decode = tFetchBlobReq, func(r *Reader) error { return readFetchBlobReq(r, x) }
	case *protocol.FetchBlobResp:
		wantID, decode = tFetchBlobResp, func(r *Reader) error { return readFetchBlobResp(r, x) }
	case *protocol.BlobChunkReq:
		wantID, decode = tBlobChunkReq, func(r *Reader) error { return readBlobChunkReq(r, x) }
	case *protocol.BlobChunkResp:
		wantID, decode = tBlobChunkResp, func(r *Reader) error { return readBlobChunkResp(r, x) }
	case *protocol.StartJobReq:
		wantID, decode = tStartJobReq, func(r *Reader) error { return readStartJobReq(r, x) }
	case *protocol.ExecTaskReq:
		wantID, decode = tExecTaskReq, func(r *Reader) error { return readExecTaskReq(r, x) }
	case *protocol.TaskEvent:
		wantID, decode = tTaskEvent, func(r *Reader) error { return readTaskEvent(r, x) }
	case *protocol.Heartbeat:
		wantID, decode = tHeartbeat, func(r *Reader) error { return readHeartbeat(r, x) }
	case *protocol.HeartbeatAck:
		wantID, decode = tHeartbeatAck, func(r *Reader) error { return readHeartbeatAck(r, x) }
	case *protocol.UserPayload:
		wantID, decode = tUserPayload, func(r *Reader) error { return readUserPayload(r, x) }
	case *protocol.CancelJobReq:
		wantID, decode = tCancelJobReq, func(r *Reader) error { return readCancelJobReq(r, x) }
	case *protocol.JobEvent:
		wantID, decode = tJobEvent, func(r *Reader) error { return readJobEvent(r, x) }
	case *protocol.TSOpReq:
		wantID, decode = tTSOpReq, func(r *Reader) error { return readTSOpReq(r, x) }
	case *protocol.TSCancelReq:
		wantID, decode = tTSCancelReq, func(r *Reader) error { return readTSCancelReq(r, x) }
	case *protocol.TSOpResp:
		wantID, decode = tTSOpResp, func(r *Reader) error { return readTSOpResp(r, x) }
	case *protocol.DataPutReq:
		wantID, decode = tDataPutReq, func(r *Reader) error { return readDataPutReq(r, x) }
	case *protocol.DataResolveReq:
		wantID, decode = tDataResolveReq, func(r *Reader) error { return readDataResolveReq(r, x) }
	case *protocol.DataLocResp:
		wantID, decode = tDataLocResp, func(r *Reader) error { return readDataLocResp(r, x) }
	case *protocol.StatsPullReq:
		wantID, decode = tStatsPullReq, func(r *Reader) error { return readStatsPullReq(r, x) }
	case *protocol.StatsReportResp:
		wantID, decode = tStatsReportResp, func(r *Reader) error { return readStatsReportResp(r, x) }
	default:
		return fmt.Errorf("wire: no binary decoder for %T", out)
	}
	if gotID != wantID {
		return fmt.Errorf("wire: payload type id %d does not match %T", gotID, out)
	}
	if err := decode(r); err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after %T payload", r.Len(), out)
	}
	return nil
}

// openPayload validates the payload header and returns a reader positioned
// at the first field plus the payload type id.
func openPayload(data []byte) (*Reader, uint64, error) {
	if len(data) < 3 {
		return nil, 0, fmt.Errorf("wire: payload too short (%d bytes)", len(data))
	}
	if data[0] != msg.TagBinary {
		return nil, 0, fmt.Errorf("wire: payload tag %#x is not binary", data[0])
	}
	if data[1] < MinVersion || data[1] > Version {
		return nil, 0, fmt.Errorf("wire: payload version %d not supported (want %d..%d)", data[1], MinVersion, Version)
	}
	r := NewReader(data[2:])
	id, err := r.Uvarint()
	if err != nil {
		return nil, 0, err
	}
	return r, id, nil
}

// --- shared sub-encodings ---

func appendSpec(b []byte, sp *task.Spec) []byte {
	if sp == nil {
		return AppendBool(b, false)
	}
	b = AppendBool(b, true)
	b = AppendString(b, sp.Name)
	b = AppendString(b, sp.Archive)
	b = AppendString(b, sp.Class)
	b = AppendUvarint(b, uint64(len(sp.DependsOn)))
	for _, d := range sp.DependsOn {
		b = AppendString(b, d)
	}
	b = AppendUvarint(b, uint64(len(sp.Params)))
	for _, p := range sp.Params {
		b = AppendString(b, string(p.Type))
		b = AppendString(b, p.Value)
	}
	b = AppendVarint(b, int64(sp.Req.MemoryMB))
	b = AppendVarint(b, int64(sp.Req.RunModel))
	return b
}

func readSpec(r *Reader) (*task.Spec, error) {
	present, err := r.Bool()
	if err != nil || !present {
		return nil, err
	}
	sp := &task.Spec{}
	if sp.Name, err = r.String(); err != nil {
		return nil, err
	}
	if sp.Archive, err = r.String(); err != nil {
		return nil, err
	}
	if sp.Class, err = r.String(); err != nil {
		return nil, err
	}
	n, err := r.Count("spec dependencies")
	if err != nil {
		return nil, err
	}
	if n > 0 {
		sp.DependsOn = make([]string, 0, capHint(n))
		for i := 0; i < n; i++ {
			s, err := r.String()
			if err != nil {
				return nil, err
			}
			sp.DependsOn = append(sp.DependsOn, s)
		}
	}
	if n, err = r.Count("spec params"); err != nil {
		return nil, err
	}
	if n > 0 {
		sp.Params = make([]task.Param, 0, capHint(n))
		for i := 0; i < n; i++ {
			typ, err := r.String()
			if err != nil {
				return nil, err
			}
			val, err := r.String()
			if err != nil {
				return nil, err
			}
			sp.Params = append(sp.Params, task.Param{Type: task.ParamType(typ), Value: val})
		}
	}
	if sp.Req.MemoryMB, err = r.Int(); err != nil {
		return nil, err
	}
	rm, err := r.Varint()
	if err != nil {
		return nil, err
	}
	sp.Req.RunModel = task.RunModel(rm)
	return sp, nil
}

func appendTaskCreate(b []byte, tc *protocol.TaskCreate) []byte {
	b = appendSpec(b, tc.Spec)
	b = AppendString(b, tc.Archive.Name)
	return AppendString(b, tc.Archive.Digest)
}

func readTaskCreate(r *Reader) (protocol.TaskCreate, error) {
	var tc protocol.TaskCreate
	var err error
	if tc.Spec, err = readSpec(r); err != nil {
		return tc, err
	}
	if tc.Archive.Name, err = r.String(); err != nil {
		return tc, err
	}
	tc.Archive.Digest, err = r.String()
	return tc, err
}

func appendStringSlice(b []byte, ss []string) []byte {
	b = AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = AppendString(b, s)
	}
	return b
}

func readStringSlice(r *Reader, what string) ([]string, error) {
	n, err := r.Count(what)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make([]string, 0, capHint(n))
	for i := 0; i < n; i++ {
		s, err := r.String()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func appendStringMap(b []byte, m map[string]string) []byte {
	b = AppendUvarint(b, uint64(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = AppendString(b, k)
		b = AppendString(b, m[k])
	}
	return b
}

func readStringMap(r *Reader, what string) (map[string]string, error) {
	n, err := r.Count(what)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make(map[string]string, capHint(n))
	for i := 0; i < n; i++ {
		k, err := r.String()
		if err != nil {
			return nil, err
		}
		v, err := r.String()
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

func appendBlobMap(b []byte, m map[string][]byte) []byte {
	b = AppendUvarint(b, uint64(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = AppendString(b, k)
		b = AppendBytes(b, m[k])
	}
	return b
}

func readBlobMap(r *Reader, what string) (map[string][]byte, error) {
	n, err := r.Count(what)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make(map[string][]byte, capHint(n))
	for i := 0; i < n; i++ {
		k, err := r.String()
		if err != nil {
			return nil, err
		}
		v, err := r.Bytes()
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

func appendTSFields(b []byte, fields []protocol.TSField) []byte {
	b = AppendUvarint(b, uint64(len(fields)))
	for _, f := range fields {
		b = AppendString(b, f.Kind)
		b = AppendString(b, f.S)
		b = AppendVarint(b, f.I)
		b = AppendFloat64(b, f.F)
		b = AppendBool(b, f.B)
		b = AppendBytes(b, f.Bytes)
	}
	return b
}

func readTSFields(r *Reader) ([]protocol.TSField, error) {
	n, err := r.Count("tuple fields")
	if err != nil || n == 0 {
		return nil, err
	}
	out := make([]protocol.TSField, 0, capHint(n))
	for i := 0; i < n; i++ {
		var f protocol.TSField
		if f.Kind, err = r.String(); err != nil {
			return nil, err
		}
		if f.S, err = r.String(); err != nil {
			return nil, err
		}
		if f.I, err = r.Varint(); err != nil {
			return nil, err
		}
		if f.F, err = r.Float64(); err != nil {
			return nil, err
		}
		if f.B, err = r.Bool(); err != nil {
			return nil, err
		}
		if f.Bytes, err = r.Bytes(); err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// --- per-body encoders/decoders, fields in declaration order ---

func appendJobRequirements(b []byte, v *protocol.JobRequirements) []byte {
	b = AppendVarint(b, int64(v.MinMemoryMB))
	return AppendVarint(b, int64(v.ExpectedTasks))
}

func readJobRequirements(r *Reader, v *protocol.JobRequirements) (err error) {
	if v.MinMemoryMB, err = r.Int(); err != nil {
		return err
	}
	v.ExpectedTasks, err = r.Int()
	return err
}

func appendJMOffer(b []byte, v *protocol.JMOffer) []byte {
	b = AppendString(b, v.Node)
	b = AppendVarint(b, int64(v.FreeMemoryMB))
	return AppendVarint(b, int64(v.ActiveJobs))
}

func readJMOffer(r *Reader, v *protocol.JMOffer) (err error) {
	if v.Node, err = r.String(); err != nil {
		return err
	}
	if v.FreeMemoryMB, err = r.Int(); err != nil {
		return err
	}
	v.ActiveJobs, err = r.Int()
	return err
}

func appendCreateJobReq(b []byte, v *protocol.CreateJobReq) []byte {
	b = AppendString(b, v.Name)
	b = appendJobRequirements(b, &v.Req)
	return AppendString(b, v.ClientNode)
}

func readCreateJobReq(r *Reader, v *protocol.CreateJobReq) (err error) {
	if v.Name, err = r.String(); err != nil {
		return err
	}
	if err = readJobRequirements(r, &v.Req); err != nil {
		return err
	}
	v.ClientNode, err = r.String()
	return err
}

func appendCreateJobResp(b []byte, v *protocol.CreateJobResp) []byte {
	return AppendString(b, v.JobID)
}

func readCreateJobResp(r *Reader, v *protocol.CreateJobResp) (err error) {
	v.JobID, err = r.String()
	return err
}

func appendCreateTaskReq(b []byte, v *protocol.CreateTaskReq) []byte {
	b = AppendString(b, v.JobID)
	b = appendSpec(b, v.Spec)
	b = AppendString(b, v.ArchiveName)
	b = AppendBytes(b, v.Archive)
	return AppendString(b, v.Digest)
}

func readCreateTaskReq(r *Reader, v *protocol.CreateTaskReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.Spec, err = readSpec(r); err != nil {
		return err
	}
	if v.ArchiveName, err = r.String(); err != nil {
		return err
	}
	if v.Archive, err = r.Bytes(); err != nil {
		return err
	}
	v.Digest, err = r.String()
	return err
}

func appendCreateTaskResp(b []byte, v *protocol.CreateTaskResp) []byte {
	return AppendString(b, v.Placement)
}

func readCreateTaskResp(r *Reader, v *protocol.CreateTaskResp) (err error) {
	v.Placement, err = r.String()
	return err
}

func appendTaskSolicitReq(b []byte, v *protocol.TaskSolicitReq) []byte {
	b = AppendString(b, v.JobID)
	return appendSpec(b, v.Spec)
}

func readTaskSolicitReq(r *Reader, v *protocol.TaskSolicitReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	v.Spec, err = readSpec(r)
	return err
}

func appendTMOffer(b []byte, v *protocol.TMOffer) []byte {
	b = AppendString(b, v.Node)
	b = AppendVarint(b, int64(v.FreeMemoryMB))
	b = AppendVarint(b, int64(v.RunningTasks))
	// Wire v3 locality fields. Like the envelope's v2 trace context they
	// trail the v2 body, so a v3 reader detects their absence by running
	// out of bytes and decodes older offers as cold.
	b = appendStringSlice(b, v.ResidentDigests)
	return AppendVarint(b, int64(v.StalledTasks))
}

func readTMOffer(r *Reader, v *protocol.TMOffer) (err error) {
	if v.Node, err = r.String(); err != nil {
		return err
	}
	if v.FreeMemoryMB, err = r.Int(); err != nil {
		return err
	}
	if v.RunningTasks, err = r.Int(); err != nil {
		return err
	}
	if r.Len() == 0 {
		// A v2-or-older offer ends here: no locality data, decode as cold.
		v.ResidentDigests, v.StalledTasks = nil, 0
		return nil
	}
	if v.ResidentDigests, err = readStringSlice(r, "resident digests"); err != nil {
		return err
	}
	v.StalledTasks, err = r.Int()
	return err
}

func appendAssignTaskReq(b []byte, v *protocol.AssignTaskReq) []byte {
	b = AppendString(b, v.JobID)
	b = AppendString(b, v.JobManager)
	b = AppendString(b, v.ClientNode)
	b = appendSpec(b, v.Spec)
	b = AppendString(b, v.ArchiveName)
	b = AppendBytes(b, v.Archive)
	return AppendString(b, v.Digest)
}

func readAssignTaskReq(r *Reader, v *protocol.AssignTaskReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.JobManager, err = r.String(); err != nil {
		return err
	}
	if v.ClientNode, err = r.String(); err != nil {
		return err
	}
	if v.Spec, err = readSpec(r); err != nil {
		return err
	}
	if v.ArchiveName, err = r.String(); err != nil {
		return err
	}
	if v.Archive, err = r.Bytes(); err != nil {
		return err
	}
	v.Digest, err = r.String()
	return err
}

func appendAssignTaskResp(b []byte, v *protocol.AssignTaskResp) []byte {
	b = AppendBool(b, v.OK)
	return AppendString(b, v.Reason)
}

func readAssignTaskResp(r *Reader, v *protocol.AssignTaskResp) (err error) {
	if v.OK, err = r.Bool(); err != nil {
		return err
	}
	v.Reason, err = r.String()
	return err
}

func appendCreateTasksReq(b []byte, v *protocol.CreateTasksReq) []byte {
	b = AppendString(b, v.JobID)
	b = AppendUvarint(b, uint64(len(v.Tasks)))
	for i := range v.Tasks {
		b = appendTaskCreate(b, &v.Tasks[i])
	}
	return appendBlobMap(b, v.Blobs)
}

func readCreateTasksReq(r *Reader, v *protocol.CreateTasksReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	n, err := r.Count("tasks")
	if err != nil {
		return err
	}
	if n > 0 {
		v.Tasks = make([]protocol.TaskCreate, 0, capHint(n))
		for i := 0; i < n; i++ {
			tc, err := readTaskCreate(r)
			if err != nil {
				return err
			}
			v.Tasks = append(v.Tasks, tc)
		}
	}
	v.Blobs, err = readBlobMap(r, "blobs")
	return err
}

func appendCreateTasksResp(b []byte, v *protocol.CreateTasksResp) []byte {
	return appendStringMap(b, v.Placements)
}

func readCreateTasksResp(r *Reader, v *protocol.CreateTasksResp) (err error) {
	v.Placements, err = readStringMap(r, "placements")
	return err
}

func appendAssignTasksReq(b []byte, v *protocol.AssignTasksReq) []byte {
	b = AppendString(b, v.JobID)
	b = AppendString(b, v.JobManager)
	b = AppendString(b, v.ClientNode)
	b = AppendUvarint(b, uint64(len(v.Items)))
	for i := range v.Items {
		b = appendTaskCreate(b, &v.Items[i])
	}
	return b
}

func readAssignTasksReq(r *Reader, v *protocol.AssignTasksReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.JobManager, err = r.String(); err != nil {
		return err
	}
	if v.ClientNode, err = r.String(); err != nil {
		return err
	}
	n, err := r.Count("assignment items")
	if err != nil {
		return err
	}
	if n > 0 {
		v.Items = make([]protocol.TaskCreate, 0, capHint(n))
		for i := 0; i < n; i++ {
			tc, err := readTaskCreate(r)
			if err != nil {
				return err
			}
			v.Items = append(v.Items, tc)
		}
	}
	return nil
}

func appendAssignTasksResp(b []byte, v *protocol.AssignTasksResp) []byte {
	b = appendStringMap(b, v.Rejected)
	return AppendVarint(b, int64(v.Fetched))
}

func readAssignTasksResp(r *Reader, v *protocol.AssignTasksResp) (err error) {
	if v.Rejected, err = readStringMap(r, "rejections"); err != nil {
		return err
	}
	v.Fetched, err = r.Int()
	return err
}

func appendFetchBlobReq(b []byte, v *protocol.FetchBlobReq) []byte {
	b = AppendString(b, v.JobID)
	return appendStringSlice(b, v.Digests)
}

func readFetchBlobReq(r *Reader, v *protocol.FetchBlobReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	v.Digests, err = readStringSlice(r, "digests")
	return err
}

func appendFetchBlobResp(b []byte, v *protocol.FetchBlobResp) []byte {
	b = appendBlobMap(b, v.Blobs)
	b = AppendUvarint(b, uint64(len(v.Sizes)))
	keys := make([]string, 0, len(v.Sizes))
	for k := range v.Sizes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = AppendString(b, k)
		b = AppendVarint(b, v.Sizes[k])
	}
	return b
}

func readFetchBlobResp(r *Reader, v *protocol.FetchBlobResp) (err error) {
	if v.Blobs, err = readBlobMap(r, "blobs"); err != nil {
		return err
	}
	n, err := r.Count("blob sizes")
	if err != nil || n == 0 {
		return err
	}
	v.Sizes = make(map[string]int64, capHint(n))
	for i := 0; i < n; i++ {
		k, err := r.String()
		if err != nil {
			return err
		}
		if v.Sizes[k], err = r.Varint(); err != nil {
			return err
		}
	}
	return nil
}

func appendBlobChunkReq(b []byte, v *protocol.BlobChunkReq) []byte {
	b = AppendString(b, v.JobID)
	b = AppendString(b, v.Digest)
	b = AppendVarint(b, v.Offset)
	b = AppendVarint(b, v.MaxBytes)
	b = AppendVarint(b, v.Total)
	return AppendBytes(b, v.Data)
}

func readBlobChunkReq(r *Reader, v *protocol.BlobChunkReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.Digest, err = r.String(); err != nil {
		return err
	}
	if v.Offset, err = r.Varint(); err != nil {
		return err
	}
	if v.MaxBytes, err = r.Varint(); err != nil {
		return err
	}
	if v.Total, err = r.Varint(); err != nil {
		return err
	}
	v.Data, err = r.Bytes()
	return err
}

func appendBlobChunkResp(b []byte, v *protocol.BlobChunkResp) []byte {
	b = AppendString(b, v.Digest)
	b = AppendVarint(b, v.Offset)
	b = AppendVarint(b, v.Total)
	b = AppendBytes(b, v.Data)
	return AppendString(b, v.Err)
}

func readBlobChunkResp(r *Reader, v *protocol.BlobChunkResp) (err error) {
	if v.Digest, err = r.String(); err != nil {
		return err
	}
	if v.Offset, err = r.Varint(); err != nil {
		return err
	}
	if v.Total, err = r.Varint(); err != nil {
		return err
	}
	if v.Data, err = r.Bytes(); err != nil {
		return err
	}
	v.Err, err = r.String()
	return err
}

func appendStartJobReq(b []byte, v *protocol.StartJobReq) []byte {
	b = AppendString(b, v.JobID)
	b = appendStringSlice(b, v.TaskNames)
	return AppendSpans(b, v.Spans)
}

func readStartJobReq(r *Reader, v *protocol.StartJobReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.TaskNames, err = readStringSlice(r, "task names"); err != nil {
		return err
	}
	v.Spans, err = ReadSpans(r)
	return err
}

func appendExecTaskReq(b []byte, v *protocol.ExecTaskReq) []byte {
	b = AppendString(b, v.JobID)
	return AppendString(b, v.Task)
}

func readExecTaskReq(r *Reader, v *protocol.ExecTaskReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	v.Task, err = r.String()
	return err
}

func appendTaskEvent(b []byte, v *protocol.TaskEvent) []byte {
	b = AppendString(b, v.JobID)
	b = AppendString(b, v.Task)
	b = AppendString(b, v.Node)
	b = AppendString(b, v.Err)
	b = AppendVarint(b, int64(v.Attempt))
	b = AppendBool(b, v.Speculative)
	return AppendSpans(b, v.Spans)
}

func readTaskEvent(r *Reader, v *protocol.TaskEvent) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.Task, err = r.String(); err != nil {
		return err
	}
	if v.Node, err = r.String(); err != nil {
		return err
	}
	if v.Err, err = r.String(); err != nil {
		return err
	}
	if v.Attempt, err = r.Int(); err != nil {
		return err
	}
	if v.Speculative, err = r.Bool(); err != nil {
		return err
	}
	v.Spans, err = ReadSpans(r)
	return err
}

func appendHeartbeat(b []byte, v *protocol.Heartbeat) []byte {
	b = AppendString(b, v.Node)
	b = AppendUvarint(b, v.Seq)
	b = AppendUvarint(b, uint64(len(v.Beats)))
	for _, beat := range v.Beats {
		b = AppendString(b, beat.JobID)
		b = AppendString(b, beat.Task)
		b = AppendBool(b, beat.Running)
		b = AppendUvarint(b, beat.Progress)
	}
	return b
}

func readHeartbeat(r *Reader, v *protocol.Heartbeat) (err error) {
	if v.Node, err = r.String(); err != nil {
		return err
	}
	if v.Seq, err = r.Uvarint(); err != nil {
		return err
	}
	n, err := r.Count("beats")
	if err != nil || n == 0 {
		return err
	}
	v.Beats = make([]protocol.TaskBeat, 0, capHint(n))
	for i := 0; i < n; i++ {
		var beat protocol.TaskBeat
		if beat.JobID, err = r.String(); err != nil {
			return err
		}
		if beat.Task, err = r.String(); err != nil {
			return err
		}
		if beat.Running, err = r.Bool(); err != nil {
			return err
		}
		if beat.Progress, err = r.Uvarint(); err != nil {
			return err
		}
		v.Beats = append(v.Beats, beat)
	}
	return nil
}

func appendHeartbeatAck(b []byte, v *protocol.HeartbeatAck) []byte {
	b = AppendString(b, v.Node)
	b = AppendUvarint(b, v.Seq)
	return appendStringSlice(b, v.UnknownJobs)
}

func readHeartbeatAck(r *Reader, v *protocol.HeartbeatAck) (err error) {
	if v.Node, err = r.String(); err != nil {
		return err
	}
	if v.Seq, err = r.Uvarint(); err != nil {
		return err
	}
	v.UnknownJobs, err = readStringSlice(r, "unknown jobs")
	return err
}

func appendUserPayload(b []byte, v *protocol.UserPayload) []byte {
	b = AppendString(b, v.JobID)
	b = AppendString(b, v.FromTask)
	b = AppendString(b, v.ToTask)
	return AppendBytes(b, v.Data)
}

func readUserPayload(r *Reader, v *protocol.UserPayload) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.FromTask, err = r.String(); err != nil {
		return err
	}
	if v.ToTask, err = r.String(); err != nil {
		return err
	}
	v.Data, err = r.Bytes()
	return err
}

func appendCancelJobReq(b []byte, v *protocol.CancelJobReq) []byte {
	b = AppendString(b, v.JobID)
	b = AppendString(b, v.Reason)
	return appendStringSlice(b, v.Tasks)
}

func readCancelJobReq(r *Reader, v *protocol.CancelJobReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.Reason, err = r.String(); err != nil {
		return err
	}
	v.Tasks, err = readStringSlice(r, "tasks")
	return err
}

func appendJobEvent(b []byte, v *protocol.JobEvent) []byte {
	b = AppendString(b, v.JobID)
	b = AppendBool(b, v.Failed)
	b = AppendString(b, v.Err)
	return appendStringMap(b, v.TaskErrs)
}

func readJobEvent(r *Reader, v *protocol.JobEvent) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.Failed, err = r.Bool(); err != nil {
		return err
	}
	if v.Err, err = r.String(); err != nil {
		return err
	}
	v.TaskErrs, err = readStringMap(r, "task errors")
	return err
}

func appendTSOpReq(b []byte, v *protocol.TSOpReq) []byte {
	b = AppendString(b, v.JobID)
	b = AppendString(b, v.FromTask)
	b = appendTSFields(b, v.Fields)
	return AppendVarint(b, v.ParkMS)
}

func readTSOpReq(r *Reader, v *protocol.TSOpReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.FromTask, err = r.String(); err != nil {
		return err
	}
	if v.Fields, err = readTSFields(r); err != nil {
		return err
	}
	v.ParkMS, err = r.Varint()
	return err
}

func appendTSCancelReq(b []byte, v *protocol.TSCancelReq) []byte {
	b = AppendString(b, v.JobID)
	return AppendUvarint(b, v.ReqID)
}

func readTSCancelReq(r *Reader, v *protocol.TSCancelReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	v.ReqID, err = r.Uvarint()
	return err
}

func appendTSOpResp(b []byte, v *protocol.TSOpResp) []byte {
	b = AppendBool(b, v.OK)
	b = AppendBool(b, v.Closed)
	b = AppendBool(b, v.NoMatch)
	b = AppendBool(b, v.Retry)
	b = AppendString(b, v.Err)
	return appendTSFields(b, v.Fields)
}

func readTSOpResp(r *Reader, v *protocol.TSOpResp) (err error) {
	if v.OK, err = r.Bool(); err != nil {
		return err
	}
	if v.Closed, err = r.Bool(); err != nil {
		return err
	}
	if v.NoMatch, err = r.Bool(); err != nil {
		return err
	}
	if v.Retry, err = r.Bool(); err != nil {
		return err
	}
	if v.Err, err = r.String(); err != nil {
		return err
	}
	v.Fields, err = readTSFields(r)
	return err
}

func appendDataPutReq(b []byte, v *protocol.DataPutReq) []byte {
	b = AppendString(b, v.JobID)
	b = AppendString(b, v.Key)
	b = AppendString(b, v.Task)
	b = AppendString(b, v.Node)
	b = AppendString(b, v.Digest)
	b = AppendVarint(b, v.Size)
	return AppendBytes(b, v.Data)
}

func readDataPutReq(r *Reader, v *protocol.DataPutReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.Key, err = r.String(); err != nil {
		return err
	}
	if v.Task, err = r.String(); err != nil {
		return err
	}
	if v.Node, err = r.String(); err != nil {
		return err
	}
	if v.Digest, err = r.String(); err != nil {
		return err
	}
	if v.Size, err = r.Varint(); err != nil {
		return err
	}
	v.Data, err = r.Bytes()
	return err
}

func appendDataResolveReq(b []byte, v *protocol.DataResolveReq) []byte {
	b = AppendString(b, v.JobID)
	b = AppendString(b, v.Key)
	b = AppendString(b, v.Task)
	b = AppendVarint(b, v.ParkMS)
	b = AppendString(b, v.StaleNode)
	return AppendString(b, v.StaleDigest)
}

func readDataResolveReq(r *Reader, v *protocol.DataResolveReq) (err error) {
	if v.JobID, err = r.String(); err != nil {
		return err
	}
	if v.Key, err = r.String(); err != nil {
		return err
	}
	if v.Task, err = r.String(); err != nil {
		return err
	}
	if v.ParkMS, err = r.Varint(); err != nil {
		return err
	}
	if v.StaleNode, err = r.String(); err != nil {
		return err
	}
	v.StaleDigest, err = r.String()
	return err
}

func appendDataLocResp(b []byte, v *protocol.DataLocResp) []byte {
	b = AppendString(b, v.Key)
	b = AppendString(b, v.Digest)
	b = AppendString(b, v.Node)
	b = AppendVarint(b, v.Size)
	b = AppendBytes(b, v.Data)
	b = AppendBool(b, v.Retry)
	b = AppendBool(b, v.Closed)
	return AppendString(b, v.Err)
}

func readDataLocResp(r *Reader, v *protocol.DataLocResp) (err error) {
	if v.Key, err = r.String(); err != nil {
		return err
	}
	if v.Digest, err = r.String(); err != nil {
		return err
	}
	if v.Node, err = r.String(); err != nil {
		return err
	}
	if v.Size, err = r.Varint(); err != nil {
		return err
	}
	if v.Data, err = r.Bytes(); err != nil {
		return err
	}
	if v.Retry, err = r.Bool(); err != nil {
		return err
	}
	if v.Closed, err = r.Bool(); err != nil {
		return err
	}
	v.Err, err = r.String()
	return err
}

func appendStatsPullReq(b []byte, v *protocol.StatsPullReq) []byte {
	return AppendString(b, v.Scraper)
}

func readStatsPullReq(r *Reader, v *protocol.StatsPullReq) (err error) {
	v.Scraper, err = r.String()
	return err
}

func appendInt64Map(b []byte, m map[string]int64) []byte {
	b = AppendUvarint(b, uint64(len(m)))
	for _, k := range sortedKeys(m) {
		b = AppendString(b, k)
		b = AppendVarint(b, m[k])
	}
	return b
}

func readInt64Map(r *Reader, what string) (map[string]int64, error) {
	n, err := r.Count(what)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make(map[string]int64, capHint(n))
	for i := 0; i < n; i++ {
		k, err := r.String()
		if err != nil {
			return nil, err
		}
		v, err := r.Varint()
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

func appendStatsReportResp(b []byte, v *protocol.StatsReportResp) []byte {
	b = AppendString(b, v.Node)
	b = appendInt64Map(b, v.Metrics.Counters)
	b = appendInt64Map(b, v.Metrics.Gauges)
	b = AppendUvarint(b, uint64(len(v.Metrics.Histograms)))
	for _, k := range sortedKeys(v.Metrics.Histograms) {
		s := v.Metrics.Histograms[k]
		b = AppendString(b, k)
		b = AppendVarint(b, s.Count)
		b = AppendFloat64(b, s.Mean)
		b = AppendFloat64(b, s.Min)
		b = AppendFloat64(b, s.Max)
		b = AppendFloat64(b, s.P50)
		b = AppendFloat64(b, s.P90)
		b = AppendFloat64(b, s.P99)
	}
	return AppendVarint(b, int64(v.Spans))
}

func readStatsReportResp(r *Reader, v *protocol.StatsReportResp) (err error) {
	if v.Node, err = r.String(); err != nil {
		return err
	}
	if v.Metrics.Counters, err = readInt64Map(r, "stats counters"); err != nil {
		return err
	}
	if v.Metrics.Gauges, err = readInt64Map(r, "stats gauges"); err != nil {
		return err
	}
	n, err := r.Count("stats histograms")
	if err != nil {
		return err
	}
	if n > 0 {
		v.Metrics.Histograms = make(map[string]metrics.Summary, capHint(n))
		for i := 0; i < n; i++ {
			k, err := r.String()
			if err != nil {
				return err
			}
			var s metrics.Summary
			if s.Count, err = r.Varint(); err != nil {
				return err
			}
			if s.Mean, err = r.Float64(); err != nil {
				return err
			}
			if s.Min, err = r.Float64(); err != nil {
				return err
			}
			if s.Max, err = r.Float64(); err != nil {
				return err
			}
			if s.P50, err = r.Float64(); err != nil {
				return err
			}
			if s.P90, err = r.Float64(); err != nil {
				return err
			}
			if s.P99, err = r.Float64(); err != nil {
				return err
			}
			v.Metrics.Histograms[k] = s
		}
	}
	v.Spans, err = r.Int()
	return err
}

// sortedKeys returns m's keys in sorted order, for deterministic map
// encodings.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
