package wire

import (
	"reflect"
	"testing"
	"time"

	"cn/internal/msg"
	"cn/internal/trace"
)

// TestTracedMessageRoundTrip: the optional trailing trace context must
// survive the envelope, and both size paths must account for it.
func TestTracedMessageRoundTrip(t *testing.T) {
	m := msg.New(msg.KindExecTask,
		msg.Address{Node: "n1", Job: "j"},
		msg.Address{Node: "n2", Job: "j", Task: "t1"},
		[]byte("payload"))
	m.Trace = trace.Context{TraceID: 0xdeadbeefcafe, SpanID: 42, ParentID: 7}
	m.Time = time.Unix(0, m.Time.UnixNano())

	frame, err := AppendFrame(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	body := frame[FrameHeaderBytes:]
	if body[2] != Version {
		t.Fatalf("frame version byte %d, want %d", body[2], Version)
	}
	got, err := DecodeFrameBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("traced envelope mismatch:\n in: %+v\nout: %+v", m, got)
	}
	if got.Trace != m.Trace {
		t.Errorf("trace context %+v, want %+v", got.Trace, m.Trace)
	}
	if SizeOf(m) != len(body) {
		t.Errorf("SizeOf = %d, frame body is %d", SizeOf(m), len(body))
	}
	if EncodedSize(m) != len(body) {
		t.Errorf("EncodedSize = %d, frame body is %d", EncodedSize(m), len(body))
	}
}

// TestUntracedMessageAddsNoBytes: the zero context is free on the wire —
// the envelope must be byte-identical to the pre-trace layout.
func TestUntracedMessageAddsNoBytes(t *testing.T) {
	m := msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{Node: "b"}, []byte("x"))
	m.Time = time.Unix(0, m.Time.UnixNano())
	enc := AppendMessage(nil, m)
	traced := m.Clone()
	traced.Trace = trace.Context{TraceID: 1, SpanID: 1}
	tracedEnc := AppendMessage(nil, traced)
	if len(tracedEnc) != len(enc)+3 {
		t.Errorf("traced adds %d bytes, want 3 (one-byte uvarints)", len(tracedEnc)-len(enc))
	}
	got, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Trace.IsZero() {
		t.Errorf("untraced envelope decoded trace %+v", got.Trace)
	}
}

// TestV1FrameStillDecodes: version negotiation — a frame stamped with the
// previous version (its body carries no trace field) must decode on a v2
// receiver.
func TestV1FrameStillDecodes(t *testing.T) {
	m := msg.New(msg.KindPong, msg.Address{Node: "a"}, msg.Address{Node: "b"}, nil)
	m.Time = time.Unix(0, m.Time.UnixNano())
	body := append([]byte{Magic0, Magic1, MinVersion}, AppendMessage(nil, m)...)
	got, err := DecodeFrameBody(body)
	if err != nil {
		t.Fatalf("v%d frame rejected: %v", MinVersion, err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("v1 envelope mismatch:\n in: %+v\nout: %+v", m, got)
	}
	if _, err := DecodeFrameBody([]byte{Magic0, Magic1, Version + 1, 0}); err == nil {
		t.Error("future frame version accepted")
	}
	if _, err := DecodeFrameBody([]byte{Magic0, Magic1, 0, 0}); err == nil {
		t.Error("frame version 0 accepted")
	}
}

// TestTruncatedTraceRejected: a partial trailing trace field is corruption,
// not an absent field.
func TestTruncatedTraceRejected(t *testing.T) {
	m := msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{Node: "b"}, nil)
	m.Trace = trace.Context{TraceID: 300, SpanID: 300, ParentID: 300} // two-byte uvarints
	enc := AppendMessage(nil, m)
	for cut := 1; cut <= 5; cut++ {
		if _, err := DecodeMessage(enc[:len(enc)-cut]); err == nil {
			t.Errorf("envelope truncated by %d bytes decoded cleanly", cut)
		}
	}
}

// TestReplyCarriesTrace: the request's context must ride the response leg.
func TestReplyCarriesTrace(t *testing.T) {
	req := msg.New(msg.KindTSIn, msg.Address{Node: "a"}, msg.Address{Node: "b"}, nil)
	req.Trace = trace.Context{TraceID: 9, SpanID: 8, ParentID: 7}
	resp := req.Reply(msg.KindTSReply, nil)
	if resp.Trace != req.Trace {
		t.Errorf("reply trace %+v, want %+v", resp.Trace, req.Trace)
	}
}

// FuzzRoundTripTraceEnvelope: structured fuzzing of the extended envelope —
// any trace triple must round-trip exactly and match the arithmetic size.
func FuzzRoundTripTraceEnvelope(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), "n1", "j", []byte("p"))
	f.Add(uint64(1), uint64(2), uint64(3), "node-long-name", "", []byte(nil))
	f.Add(^uint64(0), ^uint64(0)>>1, uint64(1), "x", "job", []byte{0xff})
	f.Fuzz(func(t *testing.T, traceID, spanID, parentID uint64, node, job string, payload []byte) {
		m := &msg.Message{
			ID:      7,
			Kind:    msg.KindUser,
			From:    msg.Address{Node: node, Job: job},
			To:      msg.Address{Node: "dst"},
			Payload: payload,
			Trace:   trace.Context{TraceID: traceID, SpanID: spanID, ParentID: parentID},
		}
		enc := AppendMessage(nil, m)
		if want := SizeOf(m) - frameBodyMin; len(enc) != want {
			t.Fatalf("encoded %d bytes, SizeOf says %d", len(enc), want)
		}
		got, err := DecodeMessage(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Trace != m.Trace {
			t.Errorf("trace %+v, want %+v", got.Trace, m.Trace)
		}
	})
}
