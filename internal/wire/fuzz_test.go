package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"cn/internal/msg"
	"cn/internal/protocol"
)

// gobBaseline encodes v the way the pre-codec wire did: a fresh
// reflection-based gob encoder per payload.
func gobBaseline(t testing.TB, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrameBody: arbitrary bytes must produce an error or a valid
// message — never a panic, and never an allocation driven by a corrupted
// length field (the decoder only ever slices its input).
func FuzzDecodeFrameBody(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{Magic0, Magic1, Version})
	f.Add([]byte{Magic0, Magic1, Version, 0xff, 0xff, 0xff, 0xff, 0xff})
	if frame, err := AppendFrame(nil, msg.New(msg.KindPing, msg.Address{Node: "a"}, msg.Address{Node: "b"}, []byte("x"))); err == nil {
		f.Add(frame[FrameHeaderBytes:])
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeFrameBody(b)
		if err == nil && m == nil {
			t.Error("nil message with nil error")
		}
	})
}

// FuzzUnmarshalPayload: arbitrary bytes against every decode target must
// error cleanly, never panic.
func FuzzUnmarshalPayload(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{msg.TagBinary, Version, byte(tHeartbeat)})
	if enc, err := Default.Marshal(&protocol.Heartbeat{Node: "n", Seq: 1}); err == nil {
		f.Add(enc)
	}
	if enc, err := Default.Marshal(&protocol.TSOpReq{JobID: "j", Fields: []protocol.TSField{{Kind: "s", S: "x"}}}); err == nil {
		f.Add(enc)
	}
	if enc, err := Default.Marshal(&protocol.DataPutReq{JobID: "j", Key: "k", Digest: "d", Size: 3, Data: []byte{1, 2, 3}}); err == nil {
		f.Add(enc)
	}
	if enc, err := Default.Marshal(&protocol.DataLocResp{Key: "k", Digest: "d", Node: "n", Size: 3}); err == nil {
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		for _, out := range bodies() {
			_ = Default.Unmarshal(b, out)
		}
	})
}

// FuzzRoundTripHeartbeat: structured fuzzing of the hottest body — any
// input that marshals must unmarshal to the same value.
func FuzzRoundTripHeartbeat(f *testing.F) {
	f.Add("node1", uint64(1), "job", "task", true, uint64(42))
	f.Fuzz(func(t *testing.T, node string, seq uint64, jobID, taskName string, running bool, progress uint64) {
		in := &protocol.Heartbeat{Node: node, Seq: seq, Beats: []protocol.TaskBeat{
			{JobID: jobID, Task: taskName, Running: running, Progress: progress},
		}}
		enc, err := Default.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var out protocol.Heartbeat
		if err := Default.Unmarshal(enc, &out); err != nil {
			t.Fatal(err)
		}
		if out.Node != in.Node || out.Seq != in.Seq || len(out.Beats) != 1 || out.Beats[0] != in.Beats[0] {
			t.Errorf("round trip mismatch: %+v vs %+v", in, out)
		}
	})
}

// FuzzRoundTripTMOffer: structured fuzzing of the extended placement offer
// — the v3 locality fields (resident digests, stall count) must survive a
// round trip for any input, including empty digest strings and zero counts.
func FuzzRoundTripTMOffer(f *testing.F) {
	f.Add("node1", int64(4000), int64(2), "d1", "d2", int64(1))
	f.Add("", int64(0), int64(0), "", "", int64(0))
	f.Fuzz(func(t *testing.T, node string, freeMB, running int64, dig1, dig2 string, stalled int64) {
		in := &protocol.TMOffer{Node: node, FreeMemoryMB: int(freeMB), RunningTasks: int(running),
			ResidentDigests: []string{dig1, dig2}, StalledTasks: int(stalled)}
		enc, err := Default.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var out protocol.TMOffer
		if err := Default.Unmarshal(enc, &out); err != nil {
			t.Fatal(err)
		}
		if out.Node != in.Node || out.FreeMemoryMB != in.FreeMemoryMB ||
			out.RunningTasks != in.RunningTasks || out.StalledTasks != in.StalledTasks ||
			len(out.ResidentDigests) != 2 ||
			out.ResidentDigests[0] != dig1 || out.ResidentDigests[1] != dig2 {
			t.Errorf("round trip mismatch: %+v vs %+v", in, out)
		}
	})
}

// FuzzRoundTripDataLoc: structured fuzzing of the data-plane location reply
// — any input that marshals must unmarshal to the same value, including the
// inline payload bytes.
func FuzzRoundTripDataLoc(f *testing.F) {
	f.Add("wc/chunk/map1", "abc", "node1", int64(1<<20), []byte{1, 2, 3}, false, "")
	f.Add("k", "", "", int64(0), []byte(nil), true, "closed")
	f.Fuzz(func(t *testing.T, key, digest, node string, size int64, data []byte, retry bool, errStr string) {
		in := &protocol.DataLocResp{Key: key, Digest: digest, Node: node, Size: size,
			Data: data, Retry: retry, Err: errStr}
		enc, err := Default.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var out protocol.DataLocResp
		if err := Default.Unmarshal(enc, &out); err != nil {
			t.Fatal(err)
		}
		if out.Key != in.Key || out.Digest != in.Digest || out.Node != in.Node ||
			out.Size != in.Size || !bytes.Equal(out.Data, in.Data) ||
			out.Retry != in.Retry || out.Closed != in.Closed || out.Err != in.Err {
			t.Errorf("round trip mismatch: %+v vs %+v", in, out)
		}
	})
}
