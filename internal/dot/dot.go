// Package dot renders CN composition artifacts as Graphviz DOT: activity
// graphs (reproducing the paper's Figures 3 and 5 as machine-readable
// diagrams) and CNX job dependency DAGs.
package dot

import (
	"fmt"
	"sort"
	"strings"

	"cn/internal/cnx"
	"cn/internal/core"
)

// esc escapes a DOT double-quoted string.
func esc(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Activity renders an activity graph in UML activity-diagram styling:
// initial as a filled circle, final as a double circle, actions as rounded
// boxes (dynamic actions annotated with their multiplicity), fork/join as
// black bars.
func Activity(g *core.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", esc(g.Name))
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes() {
		switch n.Kind {
		case core.KindInitial:
			fmt.Fprintf(&b, "  %q [shape=circle, style=filled, fillcolor=black, label=\"\", width=0.25];\n", esc(n.Name))
		case core.KindFinal:
			fmt.Fprintf(&b, "  %q [shape=doublecircle, style=filled, fillcolor=black, label=\"\", width=0.2];\n", esc(n.Name))
		case core.KindFork, core.KindJoin:
			fmt.Fprintf(&b, "  %q [shape=box, style=filled, fillcolor=black, label=\"\", height=0.08, width=1.4];\n", esc(n.Name))
		case core.KindAction:
			label := esc(n.Name)
			if n.Dynamic {
				mult := n.Multiplicity
				if mult == "" {
					mult = "*"
				}
				label += `\n` + esc(fmt.Sprintf("«dynamic %s»", mult))
			}
			if class := n.Tagged.Get(core.TagClass); class != "" {
				short := class
				if i := strings.LastIndex(class, "."); i >= 0 {
					short = class[i+1:]
				}
				label += `\n` + esc(short)
			}
			fmt.Fprintf(&b, "  %q [shape=box, style=rounded, label=\"%s\"];\n", esc(n.Name), label)
		}
	}
	for _, e := range g.Transitions() {
		if e.Guard != "" {
			fmt.Fprintf(&b, "  %q -> %q [label=\"[%s]\"];\n", esc(e.From), esc(e.To), esc(e.Guard))
			continue
		}
		fmt.Fprintf(&b, "  %q -> %q;\n", esc(e.From), esc(e.To))
	}
	b.WriteString("}\n")
	return b.String()
}

// Job renders a CNX job's dependency DAG: tasks as boxes labeled with their
// class, dependencies as edges dep -> task.
func Job(j *cnx.Job) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", esc(j.Name))
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	names := make([]string, 0, len(j.Tasks))
	for i := range j.Tasks {
		names = append(names, j.Tasks[i].Name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := j.Task(name)
		label := esc(t.Name) + `\n` + esc(t.Class)
		fmt.Fprintf(&b, "  %q [label=\"%s\"];\n", esc(t.Name), label)
	}
	for _, name := range names {
		t := j.Task(name)
		for _, dep := range t.DependsList() {
			fmt.Fprintf(&b, "  %q -> %q;\n", esc(dep), esc(t.Name))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
