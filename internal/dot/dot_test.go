package dot

import (
	"strings"
	"testing"

	"cn/internal/cnx"
	"cn/internal/core"
)

func sampleGraph(t *testing.T) *core.Graph {
	t.Helper()
	g, err := core.SplitWorkerJoin("tc",
		core.Tags(core.TagClass, "pkg.Split"),
		core.Tags(core.TagClass, "pkg.Join"),
		"w", core.Tags(core.TagClass, "pkg.Worker"), 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestActivityShapes(t *testing.T) {
	out := Activity(sampleGraph(t))
	for _, want := range []string{
		"digraph \"tc\"",
		"shape=circle",       // initial
		"shape=doublecircle", // final
		"style=rounded",      // action states
		"\"fork\"",
		"\"joinbar\"",
		"\"split\" -> \"fork\"",
		"Worker", // short class name in labels
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Activity output missing %q\n%s", want, out)
		}
	}
}

func TestActivityDynamicAnnotation(t *testing.T) {
	g, err := core.NewBuilder("dyn").
		Initial("i").
		DynamicAction("w", core.Tags(core.TagClass, "W"), "*", "rows").
		Final("f").
		Flows("i", "w", "f").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	out := Activity(g)
	if !strings.Contains(out, "«dynamic *»") {
		t.Errorf("dynamic annotation missing:\n%s", out)
	}
}

func TestActivityGuardLabel(t *testing.T) {
	g := core.NewGraph("g")
	for _, n := range []*core.Node{
		{Name: "a", Kind: core.KindAction},
		{Name: "b", Kind: core.KindAction},
	} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddGuardedTransition("a", "b", "done"); err != nil {
		t.Fatal(err)
	}
	out := Activity(g)
	if !strings.Contains(out, `[label="[done]"]`) {
		t.Errorf("guard label missing:\n%s", out)
	}
}

func TestJobDAG(t *testing.T) {
	doc, err := cnx.ParseString(`<cn2><client class="C"><job name="j">
	  <task name="a" class="X"/>
	  <task name="b" class="Y" depends="a"/>
	  <task name="c" class="Z" depends="a,b"/>
	</job></client></cn2>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	out := Job(&doc.Client.Jobs[0])
	for _, want := range []string{
		`"a" -> "b"`,
		`"a" -> "c"`,
		`"b" -> "c"`,
		"a\\nX",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Job output missing %q\n%s", want, out)
		}
	}
}

func TestEscaping(t *testing.T) {
	g := core.NewGraph(`we"ird`)
	if err := g.AddNode(&core.Node{Name: `a"b`, Kind: core.KindAction}); err != nil {
		t.Fatal(err)
	}
	out := Activity(g)
	if !strings.Contains(out, `\"`) {
		t.Errorf("quotes not escaped:\n%s", out)
	}
}
