package task

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a fresh Task instance for one execution. Factories must
// be safe to call concurrently.
type Factory func() Task

// Registry maps task class names to factories. It models Java's class
// loading: the paper ships classes inside JAR archives and instantiates them
// reflectively; Go cannot load code at run time, so every deployable class
// is compiled in and registered under its class name. The archive manifest
// (see package archive) names the class to resolve here.
type Registry struct {
	mu      sync.RWMutex
	classes map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{classes: make(map[string]Factory)}
}

// Register binds a class name to a factory. Registering a name twice is an
// error: class identity must be stable across the cluster.
func (r *Registry) Register(class string, f Factory) error {
	if class == "" {
		return fmt.Errorf("task: register: empty class name")
	}
	if f == nil {
		return fmt.Errorf("task: register %q: nil factory", class)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.classes[class]; dup {
		return fmt.Errorf("task: register %q: already registered", class)
	}
	r.classes[class] = f
	return nil
}

// MustRegister is Register but panics on error; intended for package init.
func (r *Registry) MustRegister(class string, f Factory) {
	if err := r.Register(class, f); err != nil {
		panic(err)
	}
}

// New instantiates a fresh task of the named class.
func (r *Registry) New(class string) (Task, error) {
	r.mu.RLock()
	f, ok := r.classes[class]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("task: class %q not registered", class)
	}
	return f(), nil
}

// Has reports whether the class is registered.
func (r *Registry) Has(class string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.classes[class]
	return ok
}

// Classes returns the sorted list of registered class names.
func (r *Registry) Classes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.classes))
	for c := range r.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Global is the process-wide registry used by CN servers. Applications
// register their task classes at init time, exactly once per process, the
// way a Java deployment would place JARs on every node's classpath.
var Global = NewRegistry()

// Register binds a class in the Global registry.
func Register(class string, f Factory) error { return Global.Register(class, f) }

// MustRegister binds a class in the Global registry, panicking on error.
func MustRegister(class string, f Factory) { Global.MustRegister(class, f) }
