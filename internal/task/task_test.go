package task

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestFuncAdapter(t *testing.T) {
	called := false
	var tk Task = Func(func(Context) error {
		called = true
		return nil
	})
	if err := tk.Run(nil); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("Func.Run did not call the function")
	}
}

func TestRunModelString(t *testing.T) {
	if RunAsThreadInTM.String() != "RUN_AS_THREAD_IN_TM" {
		t.Errorf("got %q", RunAsThreadInTM.String())
	}
	if RunModel(99).String() != "RunModel(99)" {
		t.Errorf("got %q", RunModel(99).String())
	}
}

func TestParseRunModel(t *testing.T) {
	cases := []struct {
		in   string
		want RunModel
	}{
		{"RUN_AS_THREAD_IN_TM", RunAsThreadInTM},
		{"RUN AS THREAD IN TM", RunAsThreadInTM}, // paper Figure 4 spelling
		{"run_as_process", RunAsProcess},
		{"  RUN_LOCAL ", RunLocal},
	}
	for _, c := range cases {
		got, err := ParseRunModel(c.in)
		if err != nil {
			t.Errorf("ParseRunModel(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseRunModel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseRunModel("RUN_ON_MOON"); err == nil {
		t.Error("unknown run model should fail")
	}
}

func TestRunModelRoundTripProperty(t *testing.T) {
	for _, rm := range []RunModel{RunAsThreadInTM, RunAsProcess, RunLocal} {
		got, err := ParseRunModel(rm.String())
		if err != nil || got != rm {
			t.Errorf("round trip %v -> %v, %v", rm, got, err)
		}
	}
}

func TestNormalizeParamType(t *testing.T) {
	cases := []struct {
		in   string
		want ParamType
	}{
		{"java.lang.Integer", TypeInteger}, // paper Figure 4
		{"java.lang.String", TypeString},
		{"Integer", TypeInteger},
		{"String", TypeString},
		{"Double", TypeDouble},
		{"int", TypeInteger},
		{"bool", TypeBoolean},
		{"float64", TypeDouble},
	}
	for _, c := range cases {
		got, err := NormalizeParamType(c.in)
		if err != nil {
			t.Errorf("NormalizeParamType(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("NormalizeParamType(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := NormalizeParamType("java.util.HashMap"); err == nil {
		t.Error("unsupported type should fail")
	}
}

func TestParamAccessors(t *testing.T) {
	p, err := NewParam("java.lang.Integer", "42")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := p.Int(); err != nil || n != 42 {
		t.Errorf("Int() = %d, %v", n, err)
	}
	if f, err := p.Float(); err != nil || f != 42 {
		t.Errorf("Float() = %g, %v", f, err)
	}
	if p.String() != "42" {
		t.Errorf("String() = %q", p.String())
	}
	if _, err := p.Bool(); err == nil {
		t.Error("Bool() on Integer should fail")
	}

	b, err := NewParam("Boolean", "true")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := b.Bool(); err != nil || !v {
		t.Errorf("Bool() = %v, %v", v, err)
	}

	s, _ := NewParam("String", "matrix.txt")
	if _, err := s.Int(); err == nil {
		t.Error("Int() on String should fail")
	}
	if _, err := s.Float(); err == nil {
		t.Error("Float() on String should fail")
	}
}

func TestParamBadValues(t *testing.T) {
	p := Param{Type: TypeInteger, Value: "forty-two"}
	if _, err := p.Int(); err == nil {
		t.Error("Int() of non-numeric should fail")
	}
	d := Param{Type: TypeDouble, Value: "NaNaN"}
	if _, err := d.Float(); err == nil {
		t.Error("Float() of garbage should fail")
	}
	b := Param{Type: TypeBoolean, Value: "maybe"}
	if _, err := b.Bool(); err == nil {
		t.Error("Bool() of garbage should fail")
	}
}

func TestParamHelpers(t *testing.T) {
	ps := []Param{{Type: TypeString, Value: "a"}, {Type: TypeInteger, Value: "7"}}
	if v, err := StringParam(ps, 0); err != nil || v != "a" {
		t.Errorf("StringParam = %q, %v", v, err)
	}
	if n, err := IntParam(ps, 1); err != nil || n != 7 {
		t.Errorf("IntParam = %d, %v", n, err)
	}
	if _, err := IntParam(ps, 5); err == nil {
		t.Error("out of range IntParam should fail")
	}
	if _, err := StringParam(ps, -1); err == nil {
		t.Error("negative index StringParam should fail")
	}
}

func TestParamIntProperty(t *testing.T) {
	f := func(n int) bool {
		p := Param{Type: TypeInteger, Value: itoa(n)}
		got, err := p.Int()
		return err == nil && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	// strconv.Itoa via fmt-free path not needed; reuse strings for clarity.
	if n == 0 {
		return "0"
	}
	neg := n < 0
	var b strings.Builder
	un := n
	if neg {
		un = -n
	}
	var digits []byte
	for un > 0 {
		digits = append(digits, byte('0'+un%10))
		un /= 10
	}
	if neg {
		b.WriteByte('-')
	}
	for i := len(digits) - 1; i >= 0; i-- {
		b.WriteByte(digits[i])
	}
	return b.String()
}

func TestDefaultRequirements(t *testing.T) {
	r := DefaultRequirements()
	if r.MemoryMB != 1000 || r.RunModel != RunAsThreadInTM {
		t.Errorf("DefaultRequirements = %+v", r)
	}
}

func TestSpecValidate(t *testing.T) {
	ok := Spec{Name: "t1", Class: "c.X", Req: DefaultRequirements()}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Class: "c.X"}, // no name
		{Name: "t1"},   // no class
		{Name: "t1", Class: "c.X", DependsOn: []string{"t1"}}, // self-dep
		{Name: "t1", Class: "c.X", DependsOn: []string{""}},   // empty dep
		{Name: "t1", Class: "c.X", Req: Requirements{MemoryMB: -1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestSpecClone(t *testing.T) {
	s := &Spec{
		Name:      "t1",
		Class:     "c.X",
		DependsOn: []string{"t0"},
		Params:    []Param{{Type: TypeString, Value: "v"}},
	}
	c := s.Clone()
	c.DependsOn[0] = "zzz"
	c.Params[0].Value = "w"
	if s.DependsOn[0] != "t0" || s.Params[0].Value != "v" {
		t.Error("Clone shares slices with original")
	}
}

func TestRegistryRegisterAndNew(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("org.example.T", func() Task { return Func(func(Context) error { return nil }) }); err != nil {
		t.Fatal(err)
	}
	if !r.Has("org.example.T") {
		t.Error("Has = false after Register")
	}
	tk, err := r.New("org.example.T")
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Run(nil); err != nil {
		t.Errorf("task run: %v", err)
	}
}

func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", func() Task { return nil }); err == nil {
		t.Error("empty class name should fail")
	}
	if err := r.Register("x", nil); err == nil {
		t.Error("nil factory should fail")
	}
	if err := r.Register("x", func() Task { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("x", func() Task { return nil }); err == nil {
		t.Error("duplicate registration should fail")
	}
	if _, err := r.New("missing"); err == nil {
		t.Error("New of unknown class should fail")
	}
}

func TestRegistryMustRegisterPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("MustRegister should panic on duplicate")
		}
	}()
	r.MustRegister("dup", func() Task { return nil })
	r.MustRegister("dup", func() Task { return nil })
}

func TestRegistryClassesSorted(t *testing.T) {
	r := NewRegistry()
	for _, c := range []string{"z.Z", "a.A", "m.M"} {
		if err := r.Register(c, func() Task { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Classes()
	want := []string{"a.A", "m.M", "z.Z"}
	if len(got) != len(want) {
		t.Fatalf("Classes() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Classes() = %v, want %v", got, want)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := "c" + itoa(i)
			if err := r.Register(class, func() Task { return nil }); err != nil {
				t.Errorf("Register %s: %v", class, err)
			}
			if !r.Has(class) {
				t.Errorf("Has(%s) false immediately after register", class)
			}
		}(i)
	}
	wg.Wait()
	if len(r.Classes()) != 16 {
		t.Errorf("have %d classes, want 16", len(r.Classes()))
	}
}

func TestErrStopped(t *testing.T) {
	if !errors.Is(ErrStopped, ErrStopped) {
		t.Error("ErrStopped identity")
	}
}
