// Package task defines the CN Task abstraction: the unit of work the user
// wants to perform ("A Task is defined to be a unit of work that the user
// wants to perform"), its execution context, typed parameters, run models,
// and the class registry that stands in for Java's dynamic class loading.
package task

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"cn/internal/tuplespace"
)

// Task is the interface a CN task class implements. In the paper a task is
// "packaged as a self-sufficient JAR file that has a class that conforms to
// the Task interface defined by CN API"; here the class is a Go type
// registered under its class name (see Register) and shipped inside an
// archive whose manifest names the class.
type Task interface {
	// Run executes the task to completion. The context provides the task's
	// parameters and its communication primitives. A nil return marks the
	// task TASK_COMPLETED; an error marks it TASK_FAILED.
	Run(ctx Context) error
}

// Func adapts a plain function to the Task interface.
type Func func(ctx Context) error

// Run calls f.
func (f Func) Run(ctx Context) error { return f(ctx) }

// Context is the view a running task has of the CN system. It mirrors the
// capabilities the paper's CN API exposes to tasks: identity, parameters,
// and message-based coordination with sibling tasks and the client.
type Context interface {
	// TaskName returns the task's name inside its job (e.g. "tctask2").
	TaskName() string
	// JobID returns the job the task belongs to.
	JobID() string
	// NodeName returns the cluster node executing the task.
	NodeName() string
	// Params returns the task's ordered parameter list (the descriptor's
	// <param> elements / tagged values ptypeN, pvalueN).
	Params() []Param
	// Send delivers a user-defined message payload to a sibling task.
	Send(toTask string, payload []byte) error
	// SendClient delivers a user-defined message payload to the client.
	SendClient(payload []byte) error
	// Broadcast delivers payload to every other task in the job.
	Broadcast(payload []byte) error
	// Recv blocks until the next user message addressed to this task
	// arrives, returning its payload and the sender task name.
	Recv() (from string, payload []byte, err error)

	// The tuple-space operations reach the job's coordination space,
	// hosted by the job's JobManager and shared by every task in the job
	// and the client ("CN also supports communication via tuple spaces").
	// Tuples hold scalar fields (string, int, int64, float64, bool,
	// []byte); templates additionally accept the tuplespace.Wildcard and
	// tuplespace.TypeOf placeholders. The space closes when the job
	// reaches a terminal state, failing blocked and future operations
	// with tuplespace.ErrClosed.

	// The data-plane operations move bulk task output directly between
	// TaskManagers: Put publishes this task's output under a job-unique
	// key (the bytes stay on the producing node, content-addressed; only
	// the location travels to the JobManager, and payloads of at most
	// protocol.DataInlineMax ride along inline), and Get resolves a key
	// and pulls its bytes straight from the producing node. Use Put/Get
	// for shuffle-sized data and Send/Recv for small control messages.

	// Put publishes payload under key for the job's consumers. Keys are
	// job-scoped; re-putting a key overwrites its advert.
	Put(key string, payload []byte) error
	// Get resolves key and returns its payload, blocking until the
	// producer publishes, the job reaches a terminal state, or ctx is
	// done. The returned slice is shared with the node's blob cache;
	// callers must not mutate it.
	Get(ctx context.Context, key string) ([]byte, error)

	// Out stores a tuple in the job's space.
	Out(t tuplespace.Tuple) error
	// In removes and returns a tuple matching tpl, blocking until one is
	// available, the space closes, or the hosting JobManager stops
	// answering (a bounded per-attempt deadline fails the call rather
	// than hanging the task).
	In(tpl tuplespace.Template) (tuplespace.Tuple, error)
	// Rd is In without removal.
	Rd(tpl tuplespace.Template) (tuplespace.Tuple, error)
	// InP removes and returns a matching tuple without blocking;
	// tuplespace.ErrNoMatch when none is stored.
	InP(tpl tuplespace.Template) (tuplespace.Tuple, error)
	// RdP is InP without removal.
	RdP(tpl tuplespace.Template) (tuplespace.Tuple, error)

	// Logf records a line in the job log.
	Logf(format string, args ...any)
	// Done reports whether the job has been cancelled; long-running tasks
	// should poll it.
	Done() bool
}

// ErrStopped is returned from Context.Recv when the task's mailbox is closed
// because the job is shutting down.
var ErrStopped = errors.New("task: stopped")

// RunModel selects how the TaskManager executes a task. The paper's
// descriptors carry e.g. <runmodel>RUN_AS_THREAD_IN_TM</runmodel>.
type RunModel int

const (
	// RunAsThreadInTM executes the task on a goroutine inside the
	// TaskManager process (the paper's RUN_AS_THREAD_IN_TM; threads map to
	// goroutines in Go).
	RunAsThreadInTM RunModel = iota
	// RunAsProcess executes the task with simulated process isolation: a
	// dedicated goroutine whose panics are confined and whose memory grant
	// is accounted separately.
	RunAsProcess
	// RunLocal executes the task inside the client process itself, used by
	// the quickstart path and unit tests.
	RunLocal
)

var runModelNames = map[RunModel]string{
	RunAsThreadInTM: "RUN_AS_THREAD_IN_TM",
	RunAsProcess:    "RUN_AS_PROCESS",
	RunLocal:        "RUN_LOCAL",
}

// String returns the descriptor spelling of the run model.
func (r RunModel) String() string {
	if s, ok := runModelNames[r]; ok {
		return s
	}
	return fmt.Sprintf("RunModel(%d)", int(r))
}

// ParseRunModel parses a descriptor run-model string. It accepts both the
// canonical underscore form and a tolerant spaced form ("RUN AS THREAD IN
// TM" appears in the paper's Figure 4).
func ParseRunModel(s string) (RunModel, error) {
	norm := strings.ToUpper(strings.ReplaceAll(strings.TrimSpace(s), " ", "_"))
	for rm, name := range runModelNames {
		if norm == name {
			return rm, nil
		}
	}
	return 0, fmt.Errorf("task: unknown run model %q", s)
}

// ParamType enumerates the parameter types CN descriptors support. The
// paper's examples use java.lang.Integer and String; we add the small set a
// composition language needs.
type ParamType string

// Supported parameter types.
const (
	TypeString  ParamType = "String"
	TypeInteger ParamType = "Integer"
	TypeLong    ParamType = "Long"
	TypeDouble  ParamType = "Double"
	TypeBoolean ParamType = "Boolean"
)

// NormalizeParamType maps Java-style fully-qualified names (e.g.
// "java.lang.Integer") and short names onto a canonical ParamType.
func NormalizeParamType(s string) (ParamType, error) {
	short := s
	if i := strings.LastIndex(s, "."); i >= 0 {
		short = s[i+1:]
	}
	switch ParamType(short) {
	case TypeString, TypeInteger, TypeLong, TypeDouble, TypeBoolean:
		return ParamType(short), nil
	}
	switch strings.ToLower(short) {
	case "int":
		return TypeInteger, nil
	case "float", "float64":
		return TypeDouble, nil
	case "bool":
		return TypeBoolean, nil
	}
	return "", fmt.Errorf("task: unsupported parameter type %q", s)
}

// Param is one typed task parameter, corresponding to a descriptor
// <param type="T">value</param> element or a ptypeN/pvalueN tagged-value
// pair in the UML model.
type Param struct {
	Type  ParamType
	Value string
}

// NewParam builds a Param after normalizing the type name.
func NewParam(typ, value string) (Param, error) {
	pt, err := NormalizeParamType(typ)
	if err != nil {
		return Param{}, err
	}
	return Param{Type: pt, Value: value}, nil
}

// String returns the parameter value verbatim.
func (p Param) String() string { return p.Value }

// Int parses the parameter as an integer; valid for Integer and Long.
func (p Param) Int() (int, error) {
	switch p.Type {
	case TypeInteger, TypeLong:
		n, err := strconv.Atoi(p.Value)
		if err != nil {
			return 0, fmt.Errorf("task: param %q as int: %w", p.Value, err)
		}
		return n, nil
	}
	return 0, fmt.Errorf("task: param type %s is not integral", p.Type)
}

// Float parses the parameter as a float64; valid for Double, Integer, Long.
func (p Param) Float() (float64, error) {
	switch p.Type {
	case TypeDouble, TypeInteger, TypeLong:
		f, err := strconv.ParseFloat(p.Value, 64)
		if err != nil {
			return 0, fmt.Errorf("task: param %q as float: %w", p.Value, err)
		}
		return f, nil
	}
	return 0, fmt.Errorf("task: param type %s is not numeric", p.Type)
}

// Bool parses the parameter as a boolean; valid for Boolean.
func (p Param) Bool() (bool, error) {
	if p.Type != TypeBoolean {
		return false, fmt.Errorf("task: param type %s is not boolean", p.Type)
	}
	b, err := strconv.ParseBool(strings.ToLower(p.Value))
	if err != nil {
		return false, fmt.Errorf("task: param %q as bool: %w", p.Value, err)
	}
	return b, nil
}

// IntParam is a convenience accessor: the i'th parameter of ps as an int.
func IntParam(ps []Param, i int) (int, error) {
	if i < 0 || i >= len(ps) {
		return 0, fmt.Errorf("task: parameter index %d out of range (have %d)", i, len(ps))
	}
	return ps[i].Int()
}

// StringParam is a convenience accessor: the i'th parameter of ps verbatim.
func StringParam(ps []Param, i int) (string, error) {
	if i < 0 || i >= len(ps) {
		return "", fmt.Errorf("task: parameter index %d out of range (have %d)", i, len(ps))
	}
	return ps[i].Value, nil
}

// Requirements captures a task's resource demands, mirroring the
// descriptor's <task-req> element.
type Requirements struct {
	// MemoryMB is the memory grant the task needs on its TaskManager.
	MemoryMB int
	// RunModel selects the execution mode.
	RunModel RunModel
}

// DefaultRequirements matches the paper's examples: 1000 MB, thread-in-TM.
func DefaultRequirements() Requirements {
	return Requirements{MemoryMB: 1000, RunModel: RunAsThreadInTM}
}

// Spec fully describes one task instance inside a job: the unit the CNX
// descriptor's <task> element declares and the JobManager places.
type Spec struct {
	// Name is the task's unique name inside the job (e.g. "tctask2").
	Name string
	// Archive is the archive file name carrying the class (e.g. "tctask.jar").
	Archive string
	// Class is the registered class name
	// (e.g. "org.jhpc.cn2.trnsclsrtask.TCTask").
	Class string
	// DependsOn lists task names that must complete before this task starts.
	DependsOn []string
	// Params is the ordered parameter list passed to the task.
	Params []Param
	// Req is the resource requirement block.
	Req Requirements
}

// Validate checks structural invariants of a single spec (name and class
// present, no self-dependency, parsable params).
func (s *Spec) Validate() error {
	if s.Name == "" {
		return errors.New("task: spec missing name")
	}
	if s.Class == "" {
		return fmt.Errorf("task: spec %q missing class", s.Name)
	}
	for _, d := range s.DependsOn {
		if d == s.Name {
			return fmt.Errorf("task: spec %q depends on itself", s.Name)
		}
		if d == "" {
			return fmt.Errorf("task: spec %q has empty dependency", s.Name)
		}
	}
	if s.Req.MemoryMB < 0 {
		return fmt.Errorf("task: spec %q has negative memory requirement", s.Name)
	}
	return nil
}

// Clone returns a deep copy of the spec.
func (s *Spec) Clone() *Spec {
	c := *s
	c.DependsOn = append([]string(nil), s.DependsOn...)
	c.Params = append([]Param(nil), s.Params...)
	return &c
}
