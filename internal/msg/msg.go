// Package msg implements the Computational Neighborhood message model.
//
// The paper states: "CN uses messages as the fundamental information between
// the CN and the client. CN has well-defined messages that define the Message
// Request, expected Message Action and expected Message Response. Besides the
// well-defined messages, CN also allows user-defined messages that only the
// application (client and its tasks) understands."
//
// This package defines the message envelope, the well-defined message kinds,
// addressing, and the payload codec shared by every CN component.
package msg

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"cn/internal/trace"
)

// Kind identifies a well-defined CN message category. Applications exchange
// KindUser messages; all other kinds are part of the CN protocol itself.
type Kind int

// Well-defined CN message kinds. The request/response pairing follows the
// paper's "Message Request / expected Message Action / expected Message
// Response" structure.
const (
	// KindInvalid is the zero Kind and never appears on the wire.
	KindInvalid Kind = iota

	// Discovery protocol (client -> JobManagers via multicast).
	KindJobManagerSolicit // request: who can host a job with these requirements?
	KindJobManagerOffer   // response: this JobManager is willing

	// Job lifecycle (client -> selected JobManager).
	KindCreateJob     // request: create a job
	KindJobCreated    // response: job handle
	KindCreateTask    // request: add a task to a job
	KindTaskAccepted  // response: task registered and placed
	KindStartTask     // request: start a named task
	KindTaskStarted   // event: task began executing
	KindTaskCompleted // event: task terminated normally
	KindTaskFailed    // event: task terminated with an error
	KindCancelJob     // request: abandon a job
	KindJobCompleted  // event: all tasks in a job reached a terminal state
	KindJobFailed     // event: the job reached a terminal failure state

	// Task placement (JobManager -> TaskManagers via multicast).
	KindTaskSolicit // request: who can execute this task?
	KindTaskOffer   // response: this TaskManager is willing
	KindUploadJar   // request: archive bytes for a placed task
	KindJarUploaded // response: archive stored and verified
	KindExecTask    // request: JobManager tells a TaskManager to run a task

	// Batch placement and content-addressed archive distribution.
	KindCreateTasks   // request: add a whole task set to a job in one round
	KindTasksAccepted // response: per-task placements
	KindAssignTasks   // request: batch assignment carrying archive refs only
	KindTasksAssigned // response: per-task assignment results
	KindFetchBlob     // request: TaskManager pulls archive blobs by digest
	KindBlobData      // response: the requested blobs

	// Data plane.
	KindUser      // user-defined message; CN provides delivery only
	KindBroadcast // user message fanned out to every task in the job

	// Health.
	KindPing
	KindPong
	KindShutdown

	// Failure detection and recovery.
	KindHeartbeat    // TaskManager -> JobManager: lease renewal + per-task progress sync
	KindHeartbeatAck // JobManager -> TaskManager: beat acknowledged, unknown jobs flagged
	KindTaskRetried  // event: a task was re-placed (recovery or speculation)

	// Tuple-space coordination (task or client -> the JobManager hosting
	// the job's space).
	KindTSOut    // request: store a tuple in the job's space
	KindTSIn     // request: take a matching tuple (blocking; parks server-side)
	KindTSRd     // request: read a matching tuple (blocking; parks server-side)
	KindTSInP    // request: take a matching tuple without blocking
	KindTSRdP    // request: read a matching tuple without blocking
	KindTSReply  // response: tuple-space operation result
	KindTSCancel // notice: abandon a parked blocking op (requester gave up)

	// Chunked blob streaming: one archive chunk per message so a large
	// archive never balloons a single frame past the transport's
	// MaxFrameBytes guard.
	KindBlobChunk    // request: push one chunk (client -> JM) or pull one (TM -> JM)
	KindBlobChunkAck // response: the pulled chunk, or the push acknowledgement

	// JobManager durability: peer checkpoint replication and failover.
	KindJMCheckpoint // event: JobManager multicasts a job's control-state checkpoint to peers
	KindJMAdopt      // request/response: a surviving JobManager re-homes a dead peer's job

	// Direct task-to-task data plane: producers advertise content-addressed
	// outputs to the JobManager (locations only, never bytes) and consumers
	// pull the bytes straight from the producer's TaskManager.
	KindDataPut     // request: producer TM -> JM location advert for a keyed output
	KindDataResolve // request: consumer TM -> JM lookup of a key's location (parks until published)
	KindDataLoc     // response: the key's location (or inline bytes for small payloads)
	KindDataFetch   // request: consumer TM -> producer TM direct chunk pull

	// Cluster-wide metrics aggregation: a scraper (the portal) pulls each
	// node's metrics registry over the fabric.
	KindStatsPull   // request: scraper -> node, report your registry snapshot
	KindStatsReport // response: the node's counters, gauges, and histograms

	// kindEnd is the exclusive upper bound of the kind space; keep it last.
	kindEnd
)

// KindCount is the size of the kind space, for per-kind counter arrays.
const KindCount = int(kindEnd)

var kindNames = map[Kind]string{
	KindInvalid:           "INVALID",
	KindJobManagerSolicit: "JM_SOLICIT",
	KindJobManagerOffer:   "JM_OFFER",
	KindCreateJob:         "CREATE_JOB",
	KindJobCreated:        "JOB_CREATED",
	KindCreateTask:        "CREATE_TASK",
	KindTaskAccepted:      "TASK_ACCEPTED",
	KindStartTask:         "START_TASK",
	KindTaskStarted:       "TASK_STARTED",
	KindTaskCompleted:     "TASK_COMPLETED",
	KindTaskFailed:        "TASK_FAILED",
	KindCancelJob:         "CANCEL_JOB",
	KindJobCompleted:      "JOB_COMPLETED",
	KindJobFailed:         "JOB_FAILED",
	KindTaskSolicit:       "TASK_SOLICIT",
	KindTaskOffer:         "TASK_OFFER",
	KindUploadJar:         "UPLOAD_JAR",
	KindJarUploaded:       "JAR_UPLOADED",
	KindExecTask:          "EXEC_TASK",
	KindCreateTasks:       "CREATE_TASKS",
	KindTasksAccepted:     "TASKS_ACCEPTED",
	KindAssignTasks:       "ASSIGN_TASKS",
	KindTasksAssigned:     "TASKS_ASSIGNED",
	KindFetchBlob:         "FETCH_BLOB",
	KindBlobData:          "BLOB_DATA",
	KindUser:              "USER",
	KindBroadcast:         "BROADCAST",
	KindPing:              "PING",
	KindPong:              "PONG",
	KindShutdown:          "SHUTDOWN",
	KindHeartbeat:         "HEARTBEAT",
	KindHeartbeatAck:      "HEARTBEAT_ACK",
	KindTaskRetried:       "TASK_RETRIED",
	KindTSOut:             "TS_OUT",
	KindTSIn:              "TS_IN",
	KindTSRd:              "TS_RD",
	KindTSInP:             "TS_INP",
	KindTSRdP:             "TS_RDP",
	KindTSReply:           "TS_REPLY",
	KindTSCancel:          "TS_CANCEL",
	KindBlobChunk:         "BLOB_CHUNK",
	KindBlobChunkAck:      "BLOB_CHUNK_ACK",
	KindJMCheckpoint:      "JM_CHECKPOINT",
	KindJMAdopt:           "JM_ADOPT",
	KindDataPut:           "DATA_PUT",
	KindDataResolve:       "DATA_RESOLVE",
	KindDataLoc:           "DATA_LOC",
	KindDataFetch:         "DATA_FETCH",
	KindStatsPull:         "STATS_PULL",
	KindStatsReport:       "STATS_REPORT",
}

// String returns the wire name of the kind, e.g. "TASK_COMPLETED".
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsWellDefined reports whether k is part of the CN protocol (as opposed to
// a user-defined payload that CN merely delivers).
func (k Kind) IsWellDefined() bool {
	return k > KindInvalid && k < kindEnd && k != KindUser && k != KindBroadcast
}

// IsEvent reports whether k is an asynchronous lifecycle event (as opposed
// to a request or a response).
func (k Kind) IsEvent() bool {
	switch k {
	case KindTaskStarted, KindTaskCompleted, KindTaskFailed, KindTaskRetried, KindJobCompleted, KindJobFailed:
		return true
	}
	return false
}

// Address names a message endpoint inside a CN deployment. An address is
// hierarchical: a node hosts jobs, a job hosts tasks. Empty trailing
// components widen the scope: {Node:"n1"} addresses the server on n1,
// {Node:"n1", Job:"j1"} its JobManager state for job j1, and
// {Node:"n1", Job:"j1", Task:"t3"} a single task mailbox.
type Address struct {
	Node string
	Job  string
	Task string
}

// ClientAddress returns the conventional address of the client program for
// the given job: clients are not hosted on a node, so Node is "client".
func ClientAddress(job string) Address {
	return Address{Node: "client", Job: job, Task: "client"}
}

// String renders the address as node/job/task with empty parts elided.
func (a Address) String() string {
	parts := []string{a.Node}
	if a.Job != "" || a.Task != "" {
		parts = append(parts, a.Job)
	}
	if a.Task != "" {
		parts = append(parts, a.Task)
	}
	return strings.Join(parts, "/")
}

// IsZero reports whether the address is entirely empty.
func (a Address) IsZero() bool { return a == Address{} }

// Matches reports whether a (possibly widened) pattern address matches m.
// Empty components in the pattern match anything.
func (a Address) Matches(m Address) bool {
	if a.Node != "" && a.Node != m.Node {
		return false
	}
	if a.Job != "" && a.Job != m.Job {
		return false
	}
	if a.Task != "" && a.Task != m.Task {
		return false
	}
	return true
}

// ParseAddress parses "node/job/task", "node/job" or "node".
func ParseAddress(s string) (Address, error) {
	if s == "" {
		return Address{}, fmt.Errorf("msg: empty address")
	}
	parts := strings.Split(s, "/")
	if len(parts) > 3 {
		return Address{}, fmt.Errorf("msg: address %q has more than three components", s)
	}
	var a Address
	a.Node = parts[0]
	if len(parts) > 1 {
		a.Job = parts[1]
	}
	if len(parts) > 2 {
		a.Task = parts[2]
	}
	return a, nil
}

// Message is the envelope exchanged between CN components and applications.
type Message struct {
	// ID is unique per producing process.
	ID uint64
	// Kind classifies the message; user traffic uses KindUser/KindBroadcast.
	Kind Kind
	// CorrelID links a response to the request it answers (0 for events).
	CorrelID uint64
	// From and To are the endpoints. To may be a widened address for
	// multicast kinds.
	From, To Address
	// Payload is the encoded body (binary codec or tagged gob); see
	// Encode/DecodePayload.
	Payload []byte
	// Headers carries small string metadata (e.g. task class, error text).
	Headers map[string]string
	// Time is the send timestamp.
	Time time.Time
	// Trace is the distributed-tracing context this message carries. The
	// zero value means "not traced" and adds nothing to the encoded frame.
	Trace trace.Context
}

var nextID atomic.Uint64

// NewID returns a process-unique message id.
func NewID() uint64 { return nextID.Add(1) }

// New constructs a message of the given kind between two endpoints with an
// already-encoded payload.
func New(kind Kind, from, to Address, payload []byte) *Message {
	return &Message{
		ID:      NewID(),
		Kind:    kind,
		From:    from,
		To:      to,
		Payload: payload,
		Time:    time.Now(),
	}
}

// Reply constructs a response message correlated with m, addressed back to
// its sender. The request's trace context is carried over so a traced
// round trip stays attributable on both legs.
func (m *Message) Reply(kind Kind, payload []byte) *Message {
	r := New(kind, m.To, m.From, payload)
	r.CorrelID = m.ID
	r.Trace = m.Trace
	return r
}

// Header returns the named header or "".
func (m *Message) Header(key string) string {
	if m.Headers == nil {
		return ""
	}
	return m.Headers[key]
}

// SetHeader sets a header, allocating the map on first use, and returns m
// for chaining.
func (m *Message) SetHeader(key, value string) *Message {
	if m.Headers == nil {
		m.Headers = make(map[string]string, 4)
	}
	m.Headers[key] = value
	return m
}

// Clone returns a deep copy of m (payload and headers are copied).
func (m *Message) Clone() *Message {
	c := *m
	if m.Payload != nil {
		c.Payload = append([]byte(nil), m.Payload...)
	}
	if m.Headers != nil {
		c.Headers = make(map[string]string, len(m.Headers))
		for k, v := range m.Headers {
			c.Headers[k] = v
		}
	}
	return &c
}

// String renders a compact one-line description for logs.
func (m *Message) String() string {
	return fmt.Sprintf("%s %s->%s id=%d len=%d", m.Kind, m.From, m.To, m.ID, len(m.Payload))
}

// Payload self-description tags: the first byte of every encoded payload
// names the codec that produced it, so mixed traffic (binary protocol
// bodies alongside gob-encoded user payloads) decodes unambiguously.
const (
	// TagGob marks a gob-encoded payload (the fallback codec and the only
	// one for arbitrary KindUser application types).
	TagGob byte = 'g'
	// TagBinary marks a payload produced by the registered binary Codec
	// (cn/internal/wire's hand-rolled per-type encoders).
	TagBinary byte = 0xb1
)

// ErrUnsupportedPayload is returned by a Codec's Marshal for types it has
// no hand-rolled encoder for; EncodePayload then falls back to gob.
var ErrUnsupportedPayload = errors.New("msg: payload type not supported by codec")

// Codec is the payload-encoding seam. A registered codec handles the
// protocol's well-defined bodies with hand-rolled binary encoders; types it
// does not know fall back to gob. Marshal output must start with TagBinary
// and Unmarshal must accept exactly that framing.
type Codec interface {
	// Marshal encodes v, or returns ErrUnsupportedPayload to select the
	// gob fallback.
	Marshal(v any) ([]byte, error)
	// Unmarshal decodes a TagBinary payload into out (a pointer).
	Unmarshal(data []byte, out any) error
}

// codecBox wraps the interface so atomic.Value accepts nil codecs.
type codecBox struct{ c Codec }

var activeCodec atomic.Value // codecBox

// SetCodec installs (or, with nil, removes) the process-wide payload codec.
// cn/internal/wire registers its binary codec at init; benchmarks toggle it
// to measure the gob baseline.
func SetCodec(c Codec) { activeCodec.Store(codecBox{c}) }

// GetCodec returns the installed payload codec, or nil.
func GetCodec() Codec {
	if b, ok := activeCodec.Load().(codecBox); ok {
		return b.c
	}
	return nil
}

// EncodePayload encodes v for use as a message payload: through the
// registered binary codec when it supports v's type, otherwise tagged gob.
func EncodePayload(v any) ([]byte, error) {
	if c := GetCodec(); c != nil {
		b, err := c.Marshal(v)
		if err == nil {
			return b, nil
		}
		if !errors.Is(err, ErrUnsupportedPayload) {
			return nil, fmt.Errorf("msg: encode payload: %w", err)
		}
	}
	var buf bytes.Buffer
	buf.WriteByte(TagGob)
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("msg: encode payload: %w", err)
	}
	return buf.Bytes(), nil
}

// MustEncode is EncodePayload for values known to be encodable; it panics on
// error and is intended for protocol-internal types.
func MustEncode(v any) []byte {
	b, err := EncodePayload(v)
	if err != nil {
		panic(err)
	}
	return b
}

// DecodePayload decodes a payload produced by EncodePayload into out, which
// must be a pointer. The leading tag byte selects the codec; an unknown
// tag is a hard error (every encoder tags, so an untagged buffer is
// corruption or a future incompatible codec, and guessing gob would only
// produce a misleading failure).
func DecodePayload(b []byte, out any) error {
	if len(b) == 0 {
		return fmt.Errorf("msg: decode payload: empty payload")
	}
	switch b[0] {
	case TagBinary:
		c := GetCodec()
		if c == nil {
			return fmt.Errorf("msg: decode payload: binary payload but no codec registered")
		}
		if err := c.Unmarshal(b, out); err != nil {
			return fmt.Errorf("msg: decode payload: %w", err)
		}
		return nil
	case TagGob:
		if err := gob.NewDecoder(bytes.NewReader(b[1:])).Decode(out); err != nil {
			return fmt.Errorf("msg: decode payload: %w", err)
		}
		return nil
	}
	return fmt.Errorf("msg: decode payload: unknown payload tag %#x", b[0])
}
