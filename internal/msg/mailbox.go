package msg

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Mailbox errors.
var (
	// ErrClosed is returned by Put/Get once the mailbox has been closed and,
	// for Get, drained.
	ErrClosed = errors.New("msg: mailbox closed")
	// ErrFull is returned by TryPut when the mailbox is at capacity.
	ErrFull = errors.New("msg: mailbox full")
	// ErrEmpty is returned by TryGet when no message is queued.
	ErrEmpty = errors.New("msg: mailbox empty")
)

// Mailbox is the bounded FIFO message queue the TaskManager sets up for each
// task ("TaskManager in turn sets up a message queue for each Task"). It is
// safe for concurrent use. A closed mailbox rejects new messages but allows
// queued messages to be drained.
type Mailbox struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	queue    []*Message
	cap      int
	closed   bool
}

// DefaultMailboxCapacity bounds a task mailbox when no explicit capacity is
// configured.
const DefaultMailboxCapacity = 1024

// NewMailbox creates a mailbox holding at most capacity messages;
// capacity <= 0 selects DefaultMailboxCapacity.
func NewMailbox(capacity int) *Mailbox {
	if capacity <= 0 {
		capacity = DefaultMailboxCapacity
	}
	mb := &Mailbox{cap: capacity}
	mb.notEmpty = sync.NewCond(&mb.mu)
	mb.notFull = sync.NewCond(&mb.mu)
	return mb
}

// Cap returns the configured capacity.
func (mb *Mailbox) Cap() int { return mb.cap }

// Len returns the number of queued messages.
func (mb *Mailbox) Len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}

// Put enqueues m, blocking while the mailbox is full. It returns ErrClosed
// if the mailbox is closed before m could be enqueued.
func (mb *Mailbox) Put(m *Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) >= mb.cap && !mb.closed {
		mb.notFull.Wait()
	}
	if mb.closed {
		return ErrClosed
	}
	mb.queue = append(mb.queue, m)
	mb.notEmpty.Signal()
	return nil
}

// TryPut enqueues m without blocking. It returns ErrFull or ErrClosed when
// the message cannot be accepted.
func (mb *Mailbox) TryPut(m *Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	if len(mb.queue) >= mb.cap {
		return ErrFull
	}
	mb.queue = append(mb.queue, m)
	mb.notEmpty.Signal()
	return nil
}

// Get dequeues the oldest message, blocking while the mailbox is empty.
// It returns ErrClosed once the mailbox is closed and drained.
func (mb *Mailbox) Get() (*Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.notEmpty.Wait()
	}
	if len(mb.queue) == 0 {
		return nil, ErrClosed
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	mb.notFull.Signal()
	return m, nil
}

// GetContext is Get with cancellation: it returns ctx.Err() if ctx is done
// before a message arrives.
func (mb *Mailbox) GetContext(ctx context.Context) (*Message, error) {
	done := make(chan struct{})
	defer close(done)
	// Wake the condition variable when the context fires so the waiting
	// goroutine can observe cancellation.
	stop := context.AfterFunc(ctx, func() {
		mb.mu.Lock()
		mb.notEmpty.Broadcast()
		mb.mu.Unlock()
	})
	defer stop()

	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed && ctx.Err() == nil {
		mb.notEmpty.Wait()
	}
	if err := ctx.Err(); err != nil && len(mb.queue) == 0 {
		return nil, fmt.Errorf("msg: get: %w", err)
	}
	if len(mb.queue) == 0 {
		return nil, ErrClosed
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	mb.notFull.Signal()
	return m, nil
}

// TryGet dequeues without blocking, returning ErrEmpty when nothing is
// queued (or ErrClosed when closed and drained).
func (mb *Mailbox) TryGet() (*Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if len(mb.queue) == 0 {
		if mb.closed {
			return nil, ErrClosed
		}
		return nil, ErrEmpty
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	mb.notFull.Signal()
	return m, nil
}

// Close marks the mailbox closed, waking all blocked producers and
// consumers. Close is idempotent.
func (mb *Mailbox) Close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	mb.closed = true
	mb.notEmpty.Broadcast()
	mb.notFull.Broadcast()
}

// Closed reports whether Close has been called.
func (mb *Mailbox) Closed() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.closed
}

// Drain dequeues and returns all currently queued messages without blocking.
func (mb *Mailbox) Drain() []*Message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	out := mb.queue
	mb.queue = nil
	mb.notFull.Broadcast()
	return out
}
