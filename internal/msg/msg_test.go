package msg

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	if got := KindTaskCompleted.String(); got != "TASK_COMPLETED" {
		t.Errorf("KindTaskCompleted.String() = %q, want TASK_COMPLETED", got)
	}
	if got := Kind(9999).String(); got != "Kind(9999)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestKindClassification(t *testing.T) {
	if KindUser.IsWellDefined() {
		t.Error("KindUser must not be well-defined")
	}
	if KindBroadcast.IsWellDefined() {
		t.Error("KindBroadcast must not be well-defined")
	}
	if !KindCreateJob.IsWellDefined() {
		t.Error("KindCreateJob must be well-defined")
	}
	if !KindTaskFailed.IsEvent() {
		t.Error("KindTaskFailed must be an event")
	}
	if KindCreateJob.IsEvent() {
		t.Error("KindCreateJob must not be an event")
	}
}

// TestEveryKindNamed: each kind below KindCount must carry a real name —
// a kind added without a kindNames entry falls back to "Kind(n)", which
// breaks logs and the transport's per-kind counters display.
func TestEveryKindNamed(t *testing.T) {
	for k := Kind(0); k < Kind(KindCount); k++ {
		if name := k.String(); len(name) > 4 && name[:5] == "Kind(" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestDataKinds(t *testing.T) {
	for k, want := range map[Kind]string{
		KindDataPut:     "DATA_PUT",
		KindDataResolve: "DATA_RESOLVE",
		KindDataLoc:     "DATA_LOC",
		KindDataFetch:   "DATA_FETCH",
	} {
		if got := k.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", k, got, want)
		}
		if !k.IsWellDefined() {
			t.Errorf("%s must be well-defined", want)
		}
		if k.IsEvent() {
			t.Errorf("%s must not be an event", want)
		}
	}
}

func TestAddressString(t *testing.T) {
	cases := []struct {
		addr Address
		want string
	}{
		{Address{Node: "n1"}, "n1"},
		{Address{Node: "n1", Job: "j1"}, "n1/j1"},
		{Address{Node: "n1", Job: "j1", Task: "t1"}, "n1/j1/t1"},
		{Address{Node: "n1", Task: "t1"}, "n1//t1"},
	}
	for _, c := range cases {
		if got := c.addr.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.addr, got, c.want)
		}
	}
}

func TestParseAddressRoundTrip(t *testing.T) {
	for _, s := range []string{"n1", "n1/j1", "n1/j1/t1"} {
		a, err := ParseAddress(s)
		if err != nil {
			t.Fatalf("ParseAddress(%q): %v", s, err)
		}
		if a.String() != s {
			t.Errorf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseAddressErrors(t *testing.T) {
	if _, err := ParseAddress(""); err == nil {
		t.Error("ParseAddress(\"\") should fail")
	}
	if _, err := ParseAddress("a/b/c/d"); err == nil {
		t.Error("ParseAddress with four components should fail")
	}
}

func TestAddressMatches(t *testing.T) {
	full := Address{Node: "n1", Job: "j1", Task: "t1"}
	if !(Address{}).Matches(full) {
		t.Error("empty pattern must match everything")
	}
	if !(Address{Node: "n1"}).Matches(full) {
		t.Error("node pattern must match")
	}
	if !(Address{Node: "n1", Job: "j1"}).Matches(full) {
		t.Error("node/job pattern must match")
	}
	if (Address{Node: "n2"}).Matches(full) {
		t.Error("different node must not match")
	}
	if (Address{Node: "n1", Job: "j2"}).Matches(full) {
		t.Error("different job must not match")
	}
	if (Address{Node: "n1", Job: "j1", Task: "t2"}).Matches(full) {
		t.Error("different task must not match")
	}
}

func TestClientAddress(t *testing.T) {
	a := ClientAddress("job7")
	if a.Node != "client" || a.Job != "job7" || a.Task != "client" {
		t.Errorf("ClientAddress = %+v", a)
	}
}

func TestNewIDMonotonic(t *testing.T) {
	a, b := NewID(), NewID()
	if b <= a {
		t.Errorf("ids not increasing: %d then %d", a, b)
	}
}

func TestNewIDConcurrentUnique(t *testing.T) {
	const n = 64
	ids := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = NewID()
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool, n)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestReplyCorrelation(t *testing.T) {
	from := Address{Node: "client", Task: "client"}
	to := Address{Node: "n1"}
	req := New(KindCreateJob, from, to, nil)
	resp := req.Reply(KindJobCreated, []byte("ok"))
	if resp.CorrelID != req.ID {
		t.Errorf("CorrelID = %d, want %d", resp.CorrelID, req.ID)
	}
	if resp.From != to || resp.To != from {
		t.Errorf("reply endpoints not swapped: from=%v to=%v", resp.From, resp.To)
	}
	if resp.Kind != KindJobCreated {
		t.Errorf("reply kind = %v", resp.Kind)
	}
}

func TestHeaders(t *testing.T) {
	m := New(KindUser, Address{}, Address{}, nil)
	if m.Header("missing") != "" {
		t.Error("missing header should be empty")
	}
	m.SetHeader("class", "org.example.Task").SetHeader("x", "y")
	if m.Header("class") != "org.example.Task" || m.Header("x") != "y" {
		t.Errorf("headers = %v", m.Headers)
	}
}

func TestClone(t *testing.T) {
	m := New(KindUser, Address{Node: "a"}, Address{Node: "b"}, []byte{1, 2, 3})
	m.SetHeader("k", "v")
	c := m.Clone()
	c.Payload[0] = 99
	c.Headers["k"] = "w"
	if m.Payload[0] != 1 {
		t.Error("clone shares payload")
	}
	if m.Headers["k"] != "v" {
		t.Error("clone shares headers")
	}
}

func TestMessageString(t *testing.T) {
	m := New(KindPing, Address{Node: "a"}, Address{Node: "b"}, []byte("xy"))
	s := m.String()
	if s == "" {
		t.Error("String() empty")
	}
}

func TestPayloadCodec(t *testing.T) {
	type payload struct {
		N int
		S string
		F []float64
	}
	in := payload{N: 42, S: "hello", F: []float64{1.5, 2.5}}
	b, err := EncodePayload(in)
	if err != nil {
		t.Fatalf("EncodePayload: %v", err)
	}
	var out payload
	if err := DecodePayload(b, &out); err != nil {
		t.Fatalf("DecodePayload: %v", err)
	}
	if out.N != in.N || out.S != in.S || len(out.F) != 2 || out.F[1] != 2.5 {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestDecodePayloadError(t *testing.T) {
	var out int
	if err := DecodePayload([]byte{0xff, 0x00}, &out); err == nil {
		t.Error("DecodePayload of garbage should fail")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode of a channel should panic")
		}
	}()
	MustEncode(make(chan int))
}

func TestPayloadRoundTripProperty(t *testing.T) {
	f := func(n int64, s string, bs []byte) bool {
		type trip struct {
			N  int64
			S  string
			Bs []byte
		}
		b, err := EncodePayload(trip{n, s, bs})
		if err != nil {
			return false
		}
		var out trip
		if err := DecodePayload(b, &out); err != nil {
			return false
		}
		if out.N != n || out.S != s || len(out.Bs) != len(bs) {
			return false
		}
		for i := range bs {
			if out.Bs[i] != bs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMailboxFIFO(t *testing.T) {
	mb := NewMailbox(8)
	for i := 0; i < 5; i++ {
		m := New(KindUser, Address{}, Address{}, []byte{byte(i)})
		if err := mb.Put(m); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if mb.Len() != 5 {
		t.Fatalf("Len = %d, want 5", mb.Len())
	}
	for i := 0; i < 5; i++ {
		m, err := mb.Get()
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if m.Payload[0] != byte(i) {
			t.Errorf("out of order: got %d at position %d", m.Payload[0], i)
		}
	}
}

func TestMailboxDefaultCapacity(t *testing.T) {
	mb := NewMailbox(0)
	if mb.Cap() != DefaultMailboxCapacity {
		t.Errorf("Cap = %d", mb.Cap())
	}
}

func TestMailboxTryPutFull(t *testing.T) {
	mb := NewMailbox(1)
	if err := mb.TryPut(New(KindUser, Address{}, Address{}, nil)); err != nil {
		t.Fatal(err)
	}
	if err := mb.TryPut(New(KindUser, Address{}, Address{}, nil)); !errors.Is(err, ErrFull) {
		t.Errorf("TryPut on full = %v, want ErrFull", err)
	}
}

func TestMailboxTryGetEmpty(t *testing.T) {
	mb := NewMailbox(1)
	if _, err := mb.TryGet(); !errors.Is(err, ErrEmpty) {
		t.Errorf("TryGet on empty = %v, want ErrEmpty", err)
	}
}

func TestMailboxBlockingPut(t *testing.T) {
	mb := NewMailbox(1)
	if err := mb.Put(New(KindUser, Address{}, Address{}, nil)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- mb.Put(New(KindUser, Address{}, Address{}, nil)) }()
	select {
	case <-done:
		t.Fatal("Put should block while full")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := mb.Get(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked Put returned %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Put did not unblock after Get")
	}
}

func TestMailboxBlockingGet(t *testing.T) {
	mb := NewMailbox(1)
	got := make(chan *Message, 1)
	go func() {
		m, err := mb.Get()
		if err != nil {
			t.Errorf("Get: %v", err)
		}
		got <- m
	}()
	time.Sleep(10 * time.Millisecond)
	want := New(KindUser, Address{}, Address{}, []byte("x"))
	if err := mb.Put(want); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.ID != want.ID {
			t.Errorf("got message %d, want %d", m.ID, want.ID)
		}
	case <-time.After(time.Second):
		t.Fatal("Get did not unblock")
	}
}

func TestMailboxCloseUnblocksGet(t *testing.T) {
	mb := NewMailbox(1)
	done := make(chan error, 1)
	go func() {
		_, err := mb.Get()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	mb.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Get after close = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock Get")
	}
}

func TestMailboxCloseDrainsRemaining(t *testing.T) {
	mb := NewMailbox(4)
	if err := mb.Put(New(KindUser, Address{}, Address{}, nil)); err != nil {
		t.Fatal(err)
	}
	mb.Close()
	if !mb.Closed() {
		t.Error("Closed() = false after Close")
	}
	if _, err := mb.Get(); err != nil {
		t.Errorf("Get of queued message after close: %v", err)
	}
	if _, err := mb.Get(); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after drain = %v, want ErrClosed", err)
	}
	if err := mb.Put(New(KindUser, Address{}, Address{}, nil)); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close = %v, want ErrClosed", err)
	}
}

func TestMailboxCloseIdempotent(t *testing.T) {
	mb := NewMailbox(1)
	mb.Close()
	mb.Close() // must not panic
}

func TestMailboxGetContextCancel(t *testing.T) {
	mb := NewMailbox(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := mb.GetContext(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("GetContext = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("GetContext did not observe cancellation")
	}
}

func TestMailboxGetContextDelivers(t *testing.T) {
	mb := NewMailbox(1)
	want := New(KindUser, Address{}, Address{}, nil)
	if err := mb.Put(want); err != nil {
		t.Fatal(err)
	}
	m, err := mb.GetContext(context.Background())
	if err != nil {
		t.Fatalf("GetContext: %v", err)
	}
	if m.ID != want.ID {
		t.Errorf("got %d, want %d", m.ID, want.ID)
	}
}

func TestMailboxDrain(t *testing.T) {
	mb := NewMailbox(8)
	for i := 0; i < 3; i++ {
		if err := mb.Put(New(KindUser, Address{}, Address{}, nil)); err != nil {
			t.Fatal(err)
		}
	}
	out := mb.Drain()
	if len(out) != 3 {
		t.Errorf("Drain returned %d messages, want 3", len(out))
	}
	if mb.Len() != 0 {
		t.Errorf("Len after drain = %d", mb.Len())
	}
}

func TestMailboxConcurrentProducersConsumers(t *testing.T) {
	mb := NewMailbox(16)
	const producers, perProducer = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := mb.Put(New(KindUser, Address{}, Address{}, nil)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}()
	}
	var consumed sync.WaitGroup
	var count int64
	var mu sync.Mutex
	for c := 0; c < 4; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				_, err := mb.Get()
				if err != nil {
					return
				}
				mu.Lock()
				count++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Wait for the queue to empty, then close to release consumers.
	for mb.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	mb.Close()
	consumed.Wait()
	if count != producers*perProducer {
		t.Errorf("consumed %d messages, want %d", count, producers*perProducer)
	}
}
