// Direct task-to-task data-plane wire protocol: a producer task publishes
// its output as a content-addressed blob on its own node and advertises the
// location to the JobManager (KindDataPut); a consumer resolves the key
// (KindDataResolve, parking server-side until the producer publishes) and
// pulls the bytes straight from the producer's TaskManager with
// KindDataFetch chunk streams — the JobManager brokers locations, never
// bytes. Small payloads ride inline on the KindDataLoc reply so a tiny
// control value costs one round trip instead of three.

package protocol

import (
	"context"
	"fmt"
	"time"

	"cn/internal/msg"
	"cn/internal/trace"
)

// DataInlineMax is the largest payload that piggybacks whole on a
// KindDataPut advert and its KindDataLoc replies. Bigger outputs stay on
// the producing node and consumers chunk-pull them TM→TM.
const DataInlineMax = 4 << 10

// DataParkWindow is how long an unresolved KindDataResolve may park
// server-side before the JobManager answers Retry and the consumer
// re-issues — the same park/Retry shape as the tuple-space protocol, so a
// dead JobManager fails the call at the client deadline instead of hanging
// the task.
const DataParkWindow = time.Second

// DataCallTimeout bounds one data-plane broker call; it exceeds the park
// window by a grace margin so a parked resolve is answered, not timed out.
const DataCallTimeout = DataParkWindow + 4*time.Second

// DataPutReq is the body of KindDataPut (producer TaskManager ->
// JobManager): advertise that the producing node now serves the keyed
// output identified by Digest. Data carries the payload inline when it is
// at most DataInlineMax bytes; the JobManager then answers resolves from
// its own copy and the key survives the producing node's death.
type DataPutReq struct {
	JobID  string
	Key    string
	Task   string // producing task name
	Node   string // serving node: the TM→TM fetch target
	Digest string
	Size   int64
	Data   []byte // inline payload (Size <= DataInlineMax), else nil
}

// DataResolveReq is the body of KindDataResolve (consumer TaskManager ->
// JobManager): look up a key's location. An unpublished key parks the
// request for up to ParkMS (0 = DataParkWindow) before the JobManager
// answers Retry. StaleNode/StaleDigest name an advert the consumer already
// failed to fetch from; the JobManager drops a matching advert before
// resolving, so a crashed producer's stale location is not served twice.
type DataResolveReq struct {
	JobID       string
	Key         string
	Task        string // consuming task name, or "client"
	ParkMS      int64
	StaleNode   string
	StaleDigest string
}

// DataLocResp is the body of KindDataLoc, answering both DATA_PUT (as an
// acknowledgement) and DATA_RESOLVE. Exactly one of the outcome fields
// describes the result: a location (Node/Digest/Size, with Data inlined for
// small payloads), Retry for a lapsed park, Closed for a terminal job, or
// Err for a request-level failure.
type DataLocResp struct {
	Key    string
	Digest string
	Node   string // serving node; empty when Data carries the payload whole
	Size   int64
	Data   []byte
	Retry  bool
	Closed bool
	Err    string
}

// DataDoFunc performs one data-plane broker call of the given kind and
// returns the decoded reply, failing (rather than blocking) when the
// JobManager does not answer within DataCallTimeout.
type DataDoFunc func(kind msg.Kind, req any) (*DataLocResp, error)

// DataWire is one requester's wire attachment to a job's data-plane broker,
// mirroring TSWire: every call is bounded by DataCallTimeout. Resolve
// replies are non-destructive, so an abandoned park needs no cancel notice
// — a late reply to a dropped correlation is simply discarded.
type DataWire struct {
	JobID    string
	FromTask string
	From, To msg.Address
	// Trace is the span context broker calls carry on the envelope; zero
	// when the task is untraced.
	Trace trace.Context
	// Call performs the bounded request/response round trip.
	Call func(ctx context.Context, toNode string, m *msg.Message) (*msg.Message, error)
}

// Do performs one broker call under ctx (additionally bounded by
// DataCallTimeout).
func (w *DataWire) Do(ctx context.Context, kind msg.Kind, req any) (*DataLocResp, error) {
	m := Body(kind, w.From, w.To, req)
	m.Trace = w.Trace
	cctx, cancel := context.WithTimeout(ctx, DataCallTimeout)
	defer cancel()
	reply, err := w.Call(cctx, w.To.Node, m)
	if err != nil {
		return nil, fmt.Errorf("data-plane %s: %w", kind, err)
	}
	var resp DataLocResp
	if err := Decode(reply, &resp); err != nil {
		return nil, fmt.Errorf("data-plane %s: %w", kind, err)
	}
	return &resp, nil
}

// Put advertises a published output to the JobManager.
func (w *DataWire) Put(ctx context.Context, key, digest string, size int64, inline []byte) error {
	resp, err := w.Do(ctx, msg.KindDataPut, DataPutReq{
		JobID:  w.JobID,
		Key:    key,
		Task:   w.FromTask,
		Node:   w.From.Node,
		Digest: digest,
		Size:   size,
		Data:   inline,
	})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return fmt.Errorf("data-plane put %q: %s", key, resp.Err)
	}
	if resp.Closed {
		return fmt.Errorf("data-plane put %q: job closed", key)
	}
	return nil
}

// Resolve looks up a key's location, re-issuing each time the server's
// park window lapses unpublished. The loop ends when a location arrives,
// the job closes, or ctx/Call fails. staleNode/staleDigest (both may be
// empty) name an advert the caller already failed to fetch from.
func (w *DataWire) Resolve(ctx context.Context, key, staleNode, staleDigest string) (*DataLocResp, error) {
	req := DataResolveReq{
		JobID:       w.JobID,
		Key:         key,
		Task:        w.FromTask,
		ParkMS:      int64(DataParkWindow / time.Millisecond),
		StaleNode:   staleNode,
		StaleDigest: staleDigest,
	}
	for {
		resp, err := w.Do(ctx, msg.KindDataResolve, req)
		if err != nil {
			return nil, err
		}
		if resp.Retry {
			// Only the first issue carries the stale hint; the matching
			// advert is already invalidated.
			req.StaleNode, req.StaleDigest = "", ""
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			continue
		}
		if resp.Closed {
			return nil, fmt.Errorf("data-plane resolve %q: job closed", key)
		}
		if resp.Err != "" {
			return nil, fmt.Errorf("data-plane resolve %q: %s", key, resp.Err)
		}
		return resp, nil
	}
}
