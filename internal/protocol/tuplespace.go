// Tuple-space wire protocol: the per-job coordination spaces hosted on
// JobManagers ("CN also supports communication via tuple spaces"). Tuples
// and templates cross the wire as ordered scalar fields; blocking In/Rd
// requests park server-side against the space's waiters and are answered
// when a match arrives, bounded by a park window after which the server
// replies Retry and the caller re-issues — so a dead JobManager fails the
// call at the client-side deadline instead of hanging the task, and a
// tuple matched during the race between timeout and waiter removal is
// still delivered, never lost.

package protocol

import (
	"context"
	"fmt"
	"time"

	"cn/internal/msg"
	"cn/internal/trace"
	"cn/internal/tuplespace"
)

// TSParkWindow is how long a blocking In/Rd may park server-side before
// the JobManager answers Retry and the caller re-issues. Shorter windows
// tighten cancellation latency; longer windows cost fewer round trips for
// long waits.
const TSParkWindow = time.Second

// TSCallTimeout bounds one tuple-space wire call. It exceeds the park
// window by a grace margin so a parked call is answered rather than timed
// out, and it is the client-side deadline that fails the call when the
// hosting JobManager is dead.
const TSCallTimeout = TSParkWindow + 4*time.Second

// TSField kind tags: value fields for tuples, pattern fields for
// templates.
const (
	TSString   = "s"    // string value
	TSInt      = "i"    // int value
	TSInt64    = "i64"  // int64 value
	TSFloat    = "f"    // float64 value
	TSBool     = "b"    // bool value
	TSBytes    = "x"    // []byte value
	TSWildcard = "wild" // template: matches any field
	TSTypeOf   = "type" // template: matches any value of the named type
)

// TSField is one scalar field of a tuple or template on the wire.
type TSField struct {
	Kind  string
	S     string // TSString value, or TSTypeOf's type name
	I     int64  // TSInt / TSInt64 value
	F     float64
	B     bool
	Bytes []byte
}

// EncodeTuple flattens a tuple into wire fields. Only scalar field types
// (string, int, int64, float64, bool, []byte) are encodable.
func EncodeTuple(t tuplespace.Tuple) ([]TSField, error) {
	out := make([]TSField, len(t))
	for i, v := range t {
		f, err := encodeValue(v)
		if err != nil {
			return nil, fmt.Errorf("protocol: tuple field %d: %w", i, err)
		}
		out[i] = f
	}
	return out, nil
}

// DecodeTuple rebuilds a tuple from wire fields.
func DecodeTuple(fields []TSField) (tuplespace.Tuple, error) {
	out := make(tuplespace.Tuple, len(fields))
	for i, f := range fields {
		v, err := decodeValue(f)
		if err != nil {
			return nil, fmt.Errorf("protocol: tuple field %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// EncodeTemplate flattens a template into wire fields: concrete values
// plus Wildcard and TypeOf placeholders.
func EncodeTemplate(tpl tuplespace.Template) ([]TSField, error) {
	out := make([]TSField, len(tpl))
	for i, p := range tpl {
		switch {
		case tuplespace.IsWildcard(p):
			out[i] = TSField{Kind: TSWildcard}
		default:
			if name, ok := tuplespace.TypeName(p); ok {
				if name == "" {
					return nil, fmt.Errorf("protocol: template field %d: TypeOf of a non-scalar type", i)
				}
				out[i] = TSField{Kind: TSTypeOf, S: name}
				continue
			}
			f, err := encodeValue(p)
			if err != nil {
				return nil, fmt.Errorf("protocol: template field %d: %w", i, err)
			}
			out[i] = f
		}
	}
	return out, nil
}

// DecodeTemplate rebuilds a template from wire fields.
func DecodeTemplate(fields []TSField) (tuplespace.Template, error) {
	out := make(tuplespace.Template, len(fields))
	for i, f := range fields {
		switch f.Kind {
		case TSWildcard:
			out[i] = tuplespace.Wildcard
		case TSTypeOf:
			p, ok := tuplespace.TypeFromName(f.S)
			if !ok {
				return nil, fmt.Errorf("protocol: template field %d: unknown type %q", i, f.S)
			}
			out[i] = p
		default:
			v, err := decodeValue(f)
			if err != nil {
				return nil, fmt.Errorf("protocol: template field %d: %w", i, err)
			}
			out[i] = v
		}
	}
	return out, nil
}

func encodeValue(v any) (TSField, error) {
	switch x := v.(type) {
	case string:
		return TSField{Kind: TSString, S: x}, nil
	case int:
		return TSField{Kind: TSInt, I: int64(x)}, nil
	case int64:
		return TSField{Kind: TSInt64, I: x}, nil
	case float64:
		return TSField{Kind: TSFloat, F: x}, nil
	case bool:
		return TSField{Kind: TSBool, B: x}, nil
	case []byte:
		return TSField{Kind: TSBytes, Bytes: x}, nil
	}
	return TSField{}, fmt.Errorf("unsupported field type %T", v)
}

func decodeValue(f TSField) (any, error) {
	switch f.Kind {
	case TSString:
		return f.S, nil
	case TSInt:
		return int(f.I), nil
	case TSInt64:
		return f.I, nil
	case TSFloat:
		return f.F, nil
	case TSBool:
		return f.B, nil
	case TSBytes:
		return f.Bytes, nil
	}
	return nil, fmt.Errorf("unknown field kind %q", f.Kind)
}

// TSOpReq is the body of the KindTSOut / KindTSIn / KindTSRd / KindTSInP /
// KindTSRdP requests.
type TSOpReq struct {
	JobID    string
	FromTask string    // requesting task name, or "client"
	Fields   []TSField // the tuple (TS_OUT) or the template (other kinds)
	// ParkMS is how long a blocking op may park server-side before the
	// JobManager answers Retry (0 = TSParkWindow).
	ParkMS int64
}

// TSCancelReq is the body of KindTSCancel (requester -> JobManager): the
// requester of a parked blocking op gave up (task cancelled, client
// context cancelled, node shutting down) and nobody will consume the
// reply. The JobManager unparks the op; a tuple matched in the races
// around the cancellation is put back into the space instead of being
// sent to a dropped correlation. Best-effort: a lost cancel costs at most
// one park window of stale waiting.
type TSCancelReq struct {
	JobID string
	// ReqID is the original request message's ID; together with the
	// sending node it identifies the parked op.
	ReqID uint64
}

// TSOpResp is the body of KindTSReply. Exactly one of OK / Closed /
// NoMatch / Retry / Err describes the outcome.
type TSOpResp struct {
	OK      bool      // the operation completed; Fields carries the tuple for In/Rd/InP/RdP
	Closed  bool      // the space is closed (job reached a terminal state)
	NoMatch bool      // a probe found no matching tuple
	Retry   bool      // a blocking op parked past its window; re-issue
	Err     string    // request-level failure (unknown job, bad encoding)
	Fields  []TSField // the matched tuple
}

// TSDoFunc performs one tuple-space wire call of the given kind with the
// given request body (JobID/FromTask are filled by the implementation) and
// returns the decoded reply. Implementations fail the call — rather than
// blocking forever — when the hosting JobManager does not answer within
// TSCallTimeout.
type TSDoFunc func(kind msg.Kind, req TSOpReq) (*TSOpResp, error)

// TSWire is one requester's wire attachment to a job's space — the single
// implementation of the call contract both the task runtime and the
// client API use: every call is bounded by TSCallTimeout, and a blocking
// call abandoned with a possible park still standing sends a best-effort
// KindTSCancel so the JobManager puts a late destructive match back into
// the space instead of answering a dropped correlation.
type TSWire struct {
	JobID    string
	FromTask string
	From, To msg.Address
	// Trace is the span context tuple-space calls carry on the envelope;
	// zero when the task is untraced.
	Trace trace.Context
	// Call performs the bounded request/response round trip.
	Call func(ctx context.Context, toNode string, m *msg.Message) (*msg.Message, error)
	// Send delivers the best-effort cancel notice.
	Send func(toNode string, m *msg.Message) error
}

// Do performs one wire op under ctx (additionally bounded by
// TSCallTimeout), applying the cancel-on-abandon contract to blocking
// kinds.
func (w *TSWire) Do(ctx context.Context, kind msg.Kind, req TSOpReq) (*TSOpResp, error) {
	req.JobID = w.JobID
	req.FromTask = w.FromTask
	m := Body(kind, w.From, w.To, req)
	m.Trace = w.Trace
	cctx, cancel := context.WithTimeout(ctx, TSCallTimeout)
	defer cancel()
	reply, err := w.Call(cctx, w.To.Node, m)
	if err != nil {
		if kind == msg.KindTSIn || kind == msg.KindTSRd {
			// The call was abandoned while possibly parked server-side;
			// tell the JobManager so a tuple matched after this point is
			// put back instead of being sent to a dropped correlation.
			cm := Body(msg.KindTSCancel, w.From, w.To, TSCancelReq{JobID: w.JobID, ReqID: m.ID})
			_ = w.Send(w.To.Node, cm)
		}
		return nil, fmt.Errorf("tuple-space %s: %w", kind, err)
	}
	var resp TSOpResp
	if err := Decode(reply, &resp); err != nil {
		return nil, fmt.Errorf("tuple-space %s: %w", kind, err)
	}
	return &resp, nil
}

// TSOut performs a wire Out.
func TSOut(do TSDoFunc, t tuplespace.Tuple) error {
	fields, err := EncodeTuple(t)
	if err != nil {
		return err
	}
	resp, err := do(msg.KindTSOut, TSOpReq{Fields: fields})
	if err != nil {
		return err
	}
	_, err = tsOutcome(resp)
	return err
}

// TSBlocking performs a wire In (KindTSIn) or Rd (KindTSRd), re-issuing
// the request each time the server's park window lapses without a match.
// The loop ends when a tuple arrives, the space closes, or do fails (the
// caller's cancellation and dead-JobManager deadlines surface there).
func TSBlocking(do TSDoFunc, kind msg.Kind, tpl tuplespace.Template) (tuplespace.Tuple, error) {
	fields, err := EncodeTemplate(tpl)
	if err != nil {
		return nil, err
	}
	for {
		resp, err := do(kind, TSOpReq{Fields: fields, ParkMS: int64(TSParkWindow / time.Millisecond)})
		if err != nil {
			return nil, err
		}
		if resp.Retry {
			continue
		}
		return tsOutcome(resp)
	}
}

// TSProbe performs a wire InP (KindTSInP) or RdP (KindTSRdP).
func TSProbe(do TSDoFunc, kind msg.Kind, tpl tuplespace.Template) (tuplespace.Tuple, error) {
	fields, err := EncodeTemplate(tpl)
	if err != nil {
		return nil, err
	}
	resp, err := do(kind, TSOpReq{Fields: fields})
	if err != nil {
		return nil, err
	}
	return tsOutcome(resp)
}

// tsOutcome maps a definitive reply onto the tuplespace package's
// sentinel errors so wire and in-process spaces behave identically.
func tsOutcome(resp *TSOpResp) (tuplespace.Tuple, error) {
	switch {
	case resp.Closed:
		return nil, tuplespace.ErrClosed
	case resp.NoMatch:
		return nil, tuplespace.ErrNoMatch
	case resp.Err != "":
		return nil, fmt.Errorf("protocol: tuple-space op: %s", resp.Err)
	case !resp.OK:
		return nil, fmt.Errorf("protocol: tuple-space op: empty reply")
	}
	if resp.Fields == nil {
		return nil, nil // Out acknowledgement
	}
	return DecodeTuple(resp.Fields)
}
