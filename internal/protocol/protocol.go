// Package protocol defines the gob-encoded payload bodies of CN's
// well-defined messages: the "Message Request, expected Message Action and
// expected Message Response" triples exchanged between the CN API client,
// JobManagers, and TaskManagers. Each struct corresponds to one msg.Kind.
package protocol

import (
	"cn/internal/metrics"
	"cn/internal/msg"
	"cn/internal/task"
	"cn/internal/trace"
)

// Multicast group names. CN servers join both; clients join neither.
const (
	// GroupJobManagers receives job-manager solicitations ("Requests to
	// JobManager are communicated using multicast").
	GroupJobManagers = "cn.jobmanagers"
	// GroupTaskManagers receives task placement solicitations ("The
	// JobManager solicits TaskManager for the Tasks").
	GroupTaskManagers = "cn.taskmanagers"
)

// JobRequirements is carried by KindJobManagerSolicit: the client's
// user-specified requirements a willing JobManager must meet.
type JobRequirements struct {
	// MinMemoryMB is the minimum free memory the hosting node must have.
	MinMemoryMB int
	// ExpectedTasks hints how many tasks the job will create.
	ExpectedTasks int
}

// JMOffer is the body of KindJobManagerOffer.
type JMOffer struct {
	Node         string
	FreeMemoryMB int
	ActiveJobs   int
}

// CreateJobReq is the body of KindCreateJob.
type CreateJobReq struct {
	Name       string
	Req        JobRequirements
	ClientNode string
}

// CreateJobResp is the body of KindJobCreated.
type CreateJobResp struct {
	JobID string
}

// CreateTaskReq is the body of KindCreateTask (client -> JobManager). The
// archive bytes ride along so the JobManager can upload them to whichever
// TaskManager it places the task on.
type CreateTaskReq struct {
	JobID       string
	Spec        *task.Spec
	ArchiveName string
	Archive     []byte
	Digest      string
}

// CreateTaskResp is the body of KindTaskAccepted.
type CreateTaskResp struct {
	// Placement is the node whose TaskManager will execute the task.
	Placement string
}

// TaskSolicitReq is the body of KindTaskSolicit (JobManager -> TaskManagers
// multicast).
type TaskSolicitReq struct {
	JobID string
	Spec  *task.Spec
}

// MaxOfferDigests bounds how many resident content digests one TMOffer
// advertises. The digests are the node's most-recently-used cache entries;
// a bounded set keeps the offer payload small on large caches while still
// covering the blobs a warm node is most likely to be asked about.
const MaxOfferDigests = 32

// TMOffer is the body of KindTaskOffer. The capacity figures travel on
// every wire version; the locality fields (resident digests, stall count)
// were added in wire v3 and decode as zero from older offers, so a cold
// default is the compatibility story.
type TMOffer struct {
	Node         string
	FreeMemoryMB int
	RunningTasks int
	// ResidentDigests is a bounded most-recently-used sample of the content
	// digests in the node's blob cache — task archives and data-plane
	// shuffle blobs alike. The placement scorer matches a job's wanted
	// digests against it so warm nodes outrank cold ones.
	ResidentDigests []string
	// StalledTasks counts running tasks whose progress counter has not
	// advanced for several heartbeat intervals — the node's self-observed
	// straggler signal, scored as a placement penalty.
	StalledTasks int
}

// AssignTaskReq is the body of KindUploadJar (JobManager -> chosen
// TaskManager): the archive upload plus the task assignment.
type AssignTaskReq struct {
	JobID       string
	JobManager  string
	ClientNode  string
	Spec        *task.Spec
	ArchiveName string
	Archive     []byte
	Digest      string
}

// AssignTaskResp is the body of KindJarUploaded.
type AssignTaskResp struct {
	OK     bool
	Reason string
}

// ArchiveRef is a content-addressed reference to a task archive: the digest
// identifies the blob, the name preserves the descriptor's jar="..." label.
// A zero ArchiveRef means the task ships no archive (pre-deployed class).
type ArchiveRef struct {
	Name   string
	Digest string
}

// IsZero reports whether the ref names no archive.
func (r ArchiveRef) IsZero() bool { return r.Digest == "" && r.Name == "" }

// TaskCreate is one task of a batch: its spec plus the content-addressed
// reference to its archive. The blob bytes travel separately (deduplicated
// by digest) or not at all when the receiver already caches the digest.
type TaskCreate struct {
	Spec    *task.Spec
	Archive ArchiveRef
}

// CreateTasksReq is the body of KindCreateTasks (client -> JobManager): the
// whole task set of a job in one request. Blobs carries each distinct
// archive's bytes exactly once, keyed by digest, so N tasks sharing an
// archive cost one copy on the wire instead of N.
type CreateTasksReq struct {
	JobID string
	Tasks []TaskCreate
	Blobs map[string][]byte
}

// CreateTasksResp is the body of KindTasksAccepted.
type CreateTasksResp struct {
	// Placements maps task name -> executing node.
	Placements map[string]string
}

// AssignTasksReq is the body of KindAssignTasks (JobManager -> one chosen
// TaskManager): a batch assignment carrying archive references only. A
// TaskManager that lacks a referenced blob fetches it once via
// KindFetchBlob; blobs it already caches cost nothing.
type AssignTasksReq struct {
	JobID      string
	JobManager string
	ClientNode string
	Items      []TaskCreate
}

// BatchRejected is the pseudo task name a TaskManager uses in
// AssignTasksResp.Rejected when the whole batch failed before any item
// could be considered (e.g. the request did not decode).
const BatchRejected = "*"

// AssignTasksResp is the body of KindTasksAssigned.
type AssignTasksResp struct {
	// Rejected maps task name -> rejection reason; tasks absent from the
	// map were accepted and reserved. The BatchRejected key marks a
	// whole-batch failure.
	Rejected map[string]string
	// Fetched counts blobs the TaskManager had to pull for this batch.
	Fetched int
}

// FetchBlobReq is the body of KindFetchBlob (TaskManager -> JobManager):
// the digest-based archive negotiation's pull side.
type FetchBlobReq struct {
	JobID   string
	Digests []string
}

// MaxInlineBlob is the largest archive that still rides whole inside a
// single message (a CreateTasksReq blob or a FetchBlobResp entry). Bigger
// blobs move chunk by chunk via KindBlobChunk so no single frame
// approaches the transport's MaxFrameBytes guard.
const MaxInlineBlob = 128 << 10

// MaxInlinePerMessage bounds the AGGREGATE inline blob bytes of one
// message. Many individually-small archives could otherwise add up past
// the transport frame limit; blobs over this running budget are chunked
// (uploads) or announced by size (fetch replies) even though each alone
// would qualify for inlining. It stays well under the frame limit to
// leave room for specs and envelope overhead.
const MaxInlinePerMessage = 512 << 10

// BlobChunkBytes is the data size of one KindBlobChunk message. Chunk
// pulls are serial acknowledged round trips nested inside the
// JobManager's AssignTimeout, so the chunk is sized near the transport
// frame limit (with room for envelope overhead) to minimize the number
// of round trips a large archive costs on real-latency links.
const BlobChunkBytes = 768 << 10

// MaxBlobBytes bounds one archive blob end to end (push staging refuses
// larger totals), so a hostile or buggy uploader cannot balloon a
// JobManager's memory one chunk at a time.
const MaxBlobBytes = 1 << 30

// FetchBlobResp is the body of KindBlobData. Digests the JobManager does
// not hold are simply absent from both maps. Blobs carries archives up to
// MaxInlineBlob whole; larger ones are announced in Sizes and the
// TaskManager pulls them chunk by chunk with KindBlobChunk.
type FetchBlobResp struct {
	Blobs map[string][]byte
	Sizes map[string]int64
}

// BlobChunkReq is the body of KindBlobChunk, serving both directions of
// the chunk protocol:
//
//   - push (client -> JobManager): Data carries raw[Offset:Offset+len] and
//     Total the blob's full size; chunks arrive in offset order and the
//     JobManager digest-verifies the reassembled blob before storing it.
//   - pull (TaskManager -> JobManager): Data is empty; the reply returns
//     up to MaxBytes (0 = BlobChunkBytes) of the stored blob at Offset.
type BlobChunkReq struct {
	JobID    string
	Digest   string
	Offset   int64
	MaxBytes int64
	Total    int64
	Data     []byte
}

// BlobChunkResp is the body of KindBlobChunkAck. For a pull it carries the
// requested chunk and the blob's Total size; for a push, Offset echoes the
// staged length so the sender can detect divergence. Err reports a
// request-level failure (unknown digest, out-of-order chunk, digest
// mismatch on completion).
type BlobChunkResp struct {
	Digest string
	Offset int64
	Total  int64
	Data   []byte
	Err    string
}

// StartJobReq is the body of KindStartTask (client -> JobManager). An empty
// TaskNames starts the whole job in dependency order.
type StartJobReq struct {
	JobID     string
	TaskNames []string
	// Spans carries the client-side spans of the job's trace (submit,
	// discovery, job/task creation) to the JobManager, which folds them
	// into the per-job timeline it assembles.
	Spans []trace.Span
}

// ExecTaskReq is the body of KindExecTask (JobManager -> TaskManager): run
// one previously assigned task now.
type ExecTaskReq struct {
	JobID string
	Task  string
}

// TaskEvent is the body of the KindTaskStarted / KindTaskCompleted /
// KindTaskFailed / KindTaskRetried events (TaskManager or JobManager ->
// client).
type TaskEvent struct {
	JobID string
	Task  string
	Node  string
	Err   string // failure or retry reason; empty for start/complete
	// Attempt counts re-placements of the task so far (0 for the original
	// placement); it is meaningful on KindTaskRetried and on events from
	// recovered tasks.
	Attempt int
	// Speculative marks a KindTaskRetried caused by straggler speculation
	// rather than failure recovery.
	Speculative bool
	// Spans carries the task's recorded spans (exec, shuffle pulls) on its
	// terminal event, so the TaskManager's side of the trace reaches the
	// JobManager's per-job timeline exactly once.
	Spans []trace.Span
}

// TaskBeat is one assignment's entry in a Heartbeat: a compact progress
// sync the JobManager uses both as a liveness proof and as the straggler
// signal (a running task whose Progress counter stops advancing is a
// speculation candidate).
type TaskBeat struct {
	JobID string
	Task  string
	// Running reports whether the task's goroutine is executing (false for
	// assigned-but-unstarted tasks).
	Running bool
	// Progress is a monotonic activity counter (messages sent/received plus
	// explicit progress reports by the task).
	Progress uint64
}

// Heartbeat is the body of KindHeartbeat (TaskManager -> each JobManager
// holding assignments on it): the lease renewal plus per-task progress.
type Heartbeat struct {
	Node  string
	Seq   uint64
	Beats []TaskBeat
}

// HeartbeatAck is the body of KindHeartbeatAck. UnknownJobs lists beat
// job ids this JobManager no longer tracks, so the TaskManager can release
// assignments orphaned by job eviction.
type HeartbeatAck struct {
	Node        string
	Seq         uint64
	UnknownJobs []string
}

// UserPayload is the body of KindUser and KindBroadcast: user-defined
// messages for which "CN merely provides a message delivery mechanism".
type UserPayload struct {
	JobID    string
	FromTask string
	ToTask   string // "client" addresses the client program
	Data     []byte
}

// ClientTaskName is the pseudo task name addressing the client program.
const ClientTaskName = "client"

// HeaderRouted marks a user message already forwarded by a JobManager; a
// routed message is a final delivery and must not be re-routed.
const HeaderRouted = "cn-routed"

// CancelJobReq is the body of KindCancelJob. An empty Tasks cancels the
// whole job on the receiving TaskManager; a non-empty Tasks releases only
// those assignments (used to roll back a partially accepted batch without
// touching the job's other tasks).
type CancelJobReq struct {
	JobID  string
	Reason string
	Tasks  []string
}

// JMCheckpoint is the body of KindJMCheckpoint (JobManager -> peer
// JobManagers via multicast): one hosted job's control-state image,
// replicated at checkpoint cadence so a surviving peer can re-home the job
// if the origin dies. Data is an opaque jobmgr-encoded snapshot; peers
// store it without decoding and only unpack on adoption. Seq orders
// checkpoints per (Origin, JobID) — a peer keeps the highest it has seen.
// Done marks a terminal tombstone: the job finished, peers drop their copy.
type JMCheckpoint struct {
	Origin string
	JobID  string
	Seq    uint64
	Done   bool
	Data   []byte
}

// JMAdoptReq is the body of KindJMAdopt (adopting JobManager -> a
// TaskManager holding the dead manager's assignments): re-point the job's
// assignments at NewManager so heartbeats, lifecycle events, and
// tuple-space calls flow to the survivor.
type JMAdoptReq struct {
	JobID      string
	NewManager string
	ClientNode string
	// Tasks lists the assignments the checkpoint places on this node; the
	// TaskManager answers with the subset still present.
	Tasks []string
}

// JMAdoptResp is the KindJMAdopt reply: the job's assignments still held
// by the answering TaskManager. Checkpointed tasks absent from Present
// finished or vanished since the last checkpoint and are re-placed by the
// adopter through the recovery engine.
type JMAdoptResp struct {
	Node    string
	Present []TaskBeat
}

// JobEvent is the body of KindJobCompleted / KindJobFailed.
type JobEvent struct {
	JobID    string
	Failed   bool
	Err      string
	TaskErrs map[string]string
}

// StatsPullReq is the body of KindStatsPull (scraper -> node): report the
// node's metrics registry. The scraper is the portal's aggregation loop;
// any client attached to the fabric may pull.
type StatsPullReq struct {
	// Scraper names the requesting endpoint (diagnostics only).
	Scraper string
}

// StatsReportResp is the body of KindStatsReport: one node's full metrics
// registry snapshot plus its span-store depth, the unit of cluster-wide
// aggregation.
type StatsReportResp struct {
	Node    string                   `json:"node"`
	Metrics metrics.RegistrySnapshot `json:"metrics"`
	// Spans is the node's current span-store depth (recorded, not yet
	// evicted) — a cheap tracing-health signal.
	Spans int `json:"spans"`
}

// Decode unmarshals a message payload into out, which must match the kind's
// body type.
func Decode(m *msg.Message, out any) error {
	return msg.DecodePayload(m.Payload, out)
}

// Body constructs a message of the given kind with an encoded body; it
// panics only if the body type is not gob-encodable (a programming error).
func Body(kind msg.Kind, from, to msg.Address, body any) *msg.Message {
	return msg.New(kind, from, to, msg.MustEncode(body))
}
