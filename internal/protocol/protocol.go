// Package protocol defines the gob-encoded payload bodies of CN's
// well-defined messages: the "Message Request, expected Message Action and
// expected Message Response" triples exchanged between the CN API client,
// JobManagers, and TaskManagers. Each struct corresponds to one msg.Kind.
package protocol

import (
	"cn/internal/msg"
	"cn/internal/task"
)

// Multicast group names. CN servers join both; clients join neither.
const (
	// GroupJobManagers receives job-manager solicitations ("Requests to
	// JobManager are communicated using multicast").
	GroupJobManagers = "cn.jobmanagers"
	// GroupTaskManagers receives task placement solicitations ("The
	// JobManager solicits TaskManager for the Tasks").
	GroupTaskManagers = "cn.taskmanagers"
)

// JobRequirements is carried by KindJobManagerSolicit: the client's
// user-specified requirements a willing JobManager must meet.
type JobRequirements struct {
	// MinMemoryMB is the minimum free memory the hosting node must have.
	MinMemoryMB int
	// ExpectedTasks hints how many tasks the job will create.
	ExpectedTasks int
}

// JMOffer is the body of KindJobManagerOffer.
type JMOffer struct {
	Node         string
	FreeMemoryMB int
	ActiveJobs   int
}

// CreateJobReq is the body of KindCreateJob.
type CreateJobReq struct {
	Name       string
	Req        JobRequirements
	ClientNode string
}

// CreateJobResp is the body of KindJobCreated.
type CreateJobResp struct {
	JobID string
}

// CreateTaskReq is the body of KindCreateTask (client -> JobManager). The
// archive bytes ride along so the JobManager can upload them to whichever
// TaskManager it places the task on.
type CreateTaskReq struct {
	JobID       string
	Spec        *task.Spec
	ArchiveName string
	Archive     []byte
	Digest      string
}

// CreateTaskResp is the body of KindTaskAccepted.
type CreateTaskResp struct {
	// Placement is the node whose TaskManager will execute the task.
	Placement string
}

// TaskSolicitReq is the body of KindTaskSolicit (JobManager -> TaskManagers
// multicast).
type TaskSolicitReq struct {
	JobID string
	Spec  *task.Spec
}

// TMOffer is the body of KindTaskOffer.
type TMOffer struct {
	Node         string
	FreeMemoryMB int
	RunningTasks int
}

// AssignTaskReq is the body of KindUploadJar (JobManager -> chosen
// TaskManager): the archive upload plus the task assignment.
type AssignTaskReq struct {
	JobID       string
	JobManager  string
	ClientNode  string
	Spec        *task.Spec
	ArchiveName string
	Archive     []byte
	Digest      string
}

// AssignTaskResp is the body of KindJarUploaded.
type AssignTaskResp struct {
	OK     bool
	Reason string
}

// StartJobReq is the body of KindStartTask (client -> JobManager). An empty
// TaskNames starts the whole job in dependency order.
type StartJobReq struct {
	JobID     string
	TaskNames []string
}

// ExecTaskReq is the body of KindExecTask (JobManager -> TaskManager): run
// one previously assigned task now.
type ExecTaskReq struct {
	JobID string
	Task  string
}

// TaskEvent is the body of the KindTaskStarted / KindTaskCompleted /
// KindTaskFailed events (TaskManager -> JobManager -> client).
type TaskEvent struct {
	JobID string
	Task  string
	Node  string
	Err   string // non-empty only for KindTaskFailed
}

// UserPayload is the body of KindUser and KindBroadcast: user-defined
// messages for which "CN merely provides a message delivery mechanism".
type UserPayload struct {
	JobID    string
	FromTask string
	ToTask   string // "client" addresses the client program
	Data     []byte
}

// ClientTaskName is the pseudo task name addressing the client program.
const ClientTaskName = "client"

// HeaderRouted marks a user message already forwarded by a JobManager; a
// routed message is a final delivery and must not be re-routed.
const HeaderRouted = "cn-routed"

// CancelJobReq is the body of KindCancelJob.
type CancelJobReq struct {
	JobID  string
	Reason string
}

// JobEvent is the body of KindJobCompleted / KindJobFailed.
type JobEvent struct {
	JobID    string
	Failed   bool
	Err      string
	TaskErrs map[string]string
}

// Decode unmarshals a message payload into out, which must match the kind's
// body type.
func Decode(m *msg.Message, out any) error {
	return msg.DecodePayload(m.Payload, out)
}

// Body constructs a message of the given kind with an encoded body; it
// panics only if the body type is not gob-encodable (a programming error).
func Body(kind msg.Kind, from, to msg.Address, body any) *msg.Message {
	return msg.New(kind, from, to, msg.MustEncode(body))
}
