package protocol

import (
	"testing"

	"cn/internal/msg"
	"cn/internal/task"
)

func roundTrip[T any](t *testing.T, kind msg.Kind, in T) T {
	t.Helper()
	m := Body(kind, msg.Address{Node: "a"}, msg.Address{Node: "b"}, in)
	if m.Kind != kind {
		t.Fatalf("kind = %v", m.Kind)
	}
	var out T
	if err := Decode(m, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestJobRequirementsRoundTrip(t *testing.T) {
	got := roundTrip(t, msg.KindJobManagerSolicit, JobRequirements{MinMemoryMB: 512, ExpectedTasks: 7})
	if got.MinMemoryMB != 512 || got.ExpectedTasks != 7 {
		t.Errorf("got %+v", got)
	}
}

func TestJMOfferRoundTrip(t *testing.T) {
	got := roundTrip(t, msg.KindJobManagerOffer, JMOffer{Node: "n3", FreeMemoryMB: 4096, ActiveJobs: 2})
	if got.Node != "n3" || got.FreeMemoryMB != 4096 || got.ActiveJobs != 2 {
		t.Errorf("got %+v", got)
	}
}

func TestCreateTaskReqRoundTrip(t *testing.T) {
	spec := &task.Spec{
		Name:      "w1",
		Archive:   "w.jar",
		Class:     "c.W",
		DependsOn: []string{"split"},
		Params:    []task.Param{{Type: task.TypeInteger, Value: "3"}},
		Req:       task.Requirements{MemoryMB: 256, RunModel: task.RunAsProcess},
	}
	in := CreateTaskReq{
		JobID:       "j1",
		Spec:        spec,
		ArchiveName: "w.jar",
		Archive:     []byte{1, 2, 3},
		Digest:      "abc",
	}
	got := roundTrip(t, msg.KindCreateTask, in)
	if got.Spec.Name != "w1" || got.Spec.Req.RunModel != task.RunAsProcess {
		t.Errorf("spec = %+v", got.Spec)
	}
	if len(got.Archive) != 3 || got.Digest != "abc" {
		t.Errorf("archive fields lost: %+v", got)
	}
	if got.Spec.DependsOn[0] != "split" {
		t.Errorf("depends = %v", got.Spec.DependsOn)
	}
	if v, err := got.Spec.Params[0].Int(); err != nil || v != 3 {
		t.Errorf("param = %v %v", v, err)
	}
}

func TestTaskEventRoundTrip(t *testing.T) {
	got := roundTrip(t, msg.KindTaskFailed, TaskEvent{JobID: "j", Task: "t", Node: "n", Err: "boom"})
	if got.Err != "boom" || got.Task != "t" {
		t.Errorf("got %+v", got)
	}
}

func TestUserPayloadRoundTrip(t *testing.T) {
	got := roundTrip(t, msg.KindUser, UserPayload{
		JobID: "j", FromTask: "a", ToTask: ClientTaskName, Data: []byte("payload"),
	})
	if got.ToTask != "client" || string(got.Data) != "payload" {
		t.Errorf("got %+v", got)
	}
}

func TestJobEventRoundTrip(t *testing.T) {
	got := roundTrip(t, msg.KindJobFailed, JobEvent{
		JobID: "j", Failed: true, Err: "x",
		TaskErrs: map[string]string{"t1": "e1"},
	})
	if !got.Failed || got.TaskErrs["t1"] != "e1" {
		t.Errorf("got %+v", got)
	}
}

func TestExecTaskReqRoundTrip(t *testing.T) {
	got := roundTrip(t, msg.KindExecTask, ExecTaskReq{JobID: "j", Task: "t9"})
	if got.Task != "t9" {
		t.Errorf("got %+v", got)
	}
}

func TestDecodeMismatch(t *testing.T) {
	m := Body(msg.KindPing, msg.Address{}, msg.Address{}, JobRequirements{MinMemoryMB: 1})
	var out TaskEvent
	// gob decodes into a different struct only when field names collide;
	// JobRequirements and TaskEvent share none, so fields stay zero.
	if err := Decode(m, &out); err == nil {
		if out.JobID != "" || out.Task != "" {
			t.Errorf("cross-decode produced data: %+v", out)
		}
	}
}

func TestGroupNames(t *testing.T) {
	if GroupJobManagers == GroupTaskManagers {
		t.Error("group names collide")
	}
	if GroupJobManagers == "" || GroupTaskManagers == "" {
		t.Error("empty group names")
	}
}
