package protocol

import (
	"reflect"
	"testing"

	"cn/internal/tuplespace"
)

func TestTupleRoundTrip(t *testing.T) {
	in := tuplespace.Tuple{"row", 3, int64(9), 1.5, true, []byte{0xCA, 0xFE}}
	fields, err := EncodeTuple(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeTuple(fields)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip %v -> %v", in, out)
	}
	// Dynamic types survive: int stays int, int64 stays int64, so TypeOf
	// templates keep matching across the wire.
	if _, ok := out[1].(int); !ok {
		t.Errorf("field 1 decoded as %T, want int", out[1])
	}
	if _, ok := out[2].(int64); !ok {
		t.Errorf("field 2 decoded as %T, want int64", out[2])
	}
}

func TestTupleRejectsNonScalar(t *testing.T) {
	if _, err := EncodeTuple(tuplespace.Tuple{"ok", struct{ X int }{1}}); err == nil {
		t.Fatal("struct field encoded; want error")
	}
	if _, err := EncodeTuple(tuplespace.Tuple{map[string]int{"a": 1}}); err == nil {
		t.Fatal("map field encoded; want error")
	}
}

func TestTemplateRoundTripMatchesLikeOriginal(t *testing.T) {
	tpl := tuplespace.Template{"row", tuplespace.Wildcard, tuplespace.TypeOf(0), "x"}
	fields, err := EncodeTemplate(tpl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTemplate(fields)
	if err != nil {
		t.Fatal(err)
	}
	match := tuplespace.Tuple{"row", []byte{1}, 7, "x"}
	miss := tuplespace.Tuple{"row", []byte{1}, int64(7), "x"} // int64 != TypeOf(int)
	for _, cand := range []tuplespace.Template{tpl, back} {
		if !cand.Matches(match) {
			t.Errorf("template %v does not match %v", cand, match)
		}
		if cand.Matches(miss) {
			t.Errorf("template %v matches %v; TypeOf(int) must reject int64", cand, miss)
		}
	}
}

func TestTemplateRejectsNonScalarTypeOf(t *testing.T) {
	if _, err := EncodeTemplate(tuplespace.Template{tuplespace.TypeOf(struct{}{})}); err == nil {
		t.Fatal("TypeOf(struct{}) encoded; want error")
	}
}

func TestDecodeUnknownFieldKind(t *testing.T) {
	if _, err := DecodeTuple([]TSField{{Kind: "nope"}}); err == nil {
		t.Fatal("unknown kind decoded; want error")
	}
	if _, err := DecodeTemplate([]TSField{{Kind: TSTypeOf, S: "chan int"}}); err == nil {
		t.Fatal("unknown TypeOf name decoded; want error")
	}
}
