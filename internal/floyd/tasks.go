package floyd

import (
	"fmt"

	"cn/internal/msg"
	"cn/internal/task"
)

// Task class names, in the paper's package style.
const (
	ClassTaskSplit = "org.jhpc.cn2.transcloser.TaskSplit"
	ClassTCTask    = "org.jhpc.cn2.trnsclsrtask.TCTask"
	ClassTCJoin    = "org.jhpc.cn2.transcloser.TaskJoin"
)

// Archive file names, matching the paper's Figure 2 descriptor.
const (
	JarTaskSplit = "tasksplit.jar"
	JarTCTask    = "tctask.jar"
	JarTCJoin    = "taskjoin.jar"
)

// wire is the single message body exchanged by the transitive-closure
// tasks; Kind discriminates the variants.
type wire struct {
	Kind string // "matrix", "block", "row", "result"
	// matrix / block / result payloads
	N     int
	Start int
	End   int
	Rows  []int64
	// row payload
	K   int
	Row []int64
}

func encodeWire(w *wire) []byte { return msg.MustEncode(w) }
func decodeWire(b []byte) (*wire, error) {
	var w wire
	if err := msg.DecodePayload(b, &w); err != nil {
		return nil, fmt.Errorf("floyd: decode wire: %w", err)
	}
	return &w, nil
}

// workerName returns the conventional worker task name (1-based), e.g.
// tctask1..tctaskN like the paper's descriptor.
func workerName(prefix string, idx int) string {
	return fmt.Sprintf("%s%d", prefix, idx+1)
}

// Register binds the three task classes into a registry. Deployments call
// this once per process, the way the paper's JAR files are installed on
// every node.
func Register(r *task.Registry) error {
	if err := r.Register(ClassTaskSplit, func() task.Task { return &TaskSplit{} }); err != nil {
		return err
	}
	if err := r.Register(ClassTCTask, func() task.Task { return &TCTask{} }); err != nil {
		return err
	}
	return r.Register(ClassTCJoin, func() task.Task { return &TCJoin{} })
}

// MustRegister is Register but panics on error.
func MustRegister(r *task.Registry) {
	if err := Register(r); err != nil {
		panic(err)
	}
}

// TaskSplit "reads the input and initializes the worker tasks with the
// appropriate rows" (paper §2). Its input matrix arrives as a user message
// from the client; parameters: [0] workers (Integer), [1] worker name
// prefix (String).
type TaskSplit struct{}

// Run implements task.Task.
func (*TaskSplit) Run(ctx task.Context) error {
	params := ctx.Params()
	workers, err := task.IntParam(params, 0)
	if err != nil {
		return fmt.Errorf("floyd: split: %w", err)
	}
	prefix, err := task.StringParam(params, 1)
	if err != nil {
		return fmt.Errorf("floyd: split: %w", err)
	}
	if workers < 1 {
		return fmt.Errorf("floyd: split: %d workers", workers)
	}
	// The client sends the input matrix after starting the job.
	var m *Matrix
	for m == nil {
		from, data, err := ctx.Recv()
		if err != nil {
			return fmt.Errorf("floyd: split: waiting for matrix: %w", err)
		}
		w, err := decodeWire(data)
		if err != nil || w.Kind != "matrix" {
			ctx.Logf("split: ignoring %q message from %s", w.Kind, from)
			continue
		}
		m = &Matrix{N: w.N, D: w.Rows}
	}
	if workers > m.N {
		return fmt.Errorf("floyd: split: %d workers for %d rows (algorithm allows at most N tasks)", workers, m.N)
	}
	for w := 0; w < workers; w++ {
		start, end := BlockBounds(m.N, workers, w)
		block := &wire{
			Kind:  "block",
			N:     m.N,
			Start: start,
			End:   end,
			Rows:  append([]int64(nil), m.D[start*m.N:end*m.N]...),
		}
		if err := ctx.Send(workerName(prefix, w), encodeWire(block)); err != nil {
			return fmt.Errorf("floyd: split: send block %d: %w", w, err)
		}
	}
	ctx.Logf("split: distributed %d rows to %d workers", m.N, workers)
	return nil
}

// TCTask is one worker: "Each task has one or more adjacent rows of the
// adjacency matrix ... in the kth step, each task requires, in addition to
// the rows assigned to it, the kth row" (paper §2). Parameters: [0] worker
// index 1..W (Integer, the paper's pvalue0), [1] workers W (Integer), [2]
// worker name prefix (String), [3] join task name (String).
type TCTask struct{}

// Run implements task.Task.
func (*TCTask) Run(ctx task.Context) error {
	params := ctx.Params()
	idx1, err := task.IntParam(params, 0)
	if err != nil {
		return fmt.Errorf("floyd: worker: %w", err)
	}
	workers, err := task.IntParam(params, 1)
	if err != nil {
		return fmt.Errorf("floyd: worker: %w", err)
	}
	prefix, err := task.StringParam(params, 2)
	if err != nil {
		return fmt.Errorf("floyd: worker: %w", err)
	}
	joinName, err := task.StringParam(params, 3)
	if err != nil {
		return fmt.Errorf("floyd: worker: %w", err)
	}
	self := idx1 - 1

	// Out-of-order tolerant receive: rows for future steps are buffered.
	pendingRows := make(map[int][]int64)
	var block *wire
	recvNext := func() error {
		_, data, err := ctx.Recv()
		if err != nil {
			return err
		}
		w, err := decodeWire(data)
		if err != nil {
			return err
		}
		switch w.Kind {
		case "block":
			block = w
		case "row":
			pendingRows[w.K] = w.Row
		default:
			ctx.Logf("worker: ignoring %q message", w.Kind)
		}
		return nil
	}
	for block == nil {
		if err := recvNext(); err != nil {
			return fmt.Errorf("floyd: worker %d: waiting for block: %w", idx1, err)
		}
	}
	n := block.N
	start, end := block.Start, block.End
	// Local sub-matrix holds only this worker's rows.
	local := &Matrix{N: n, D: block.Rows}
	localRow := func(i int) []int64 { return local.D[(i-start)*n : (i-start+1)*n] }

	for k := 0; k < n; k++ {
		var rowK []int64
		if OwnerOf(n, workers, k) == self {
			// "in the kth iteration have the task with the kth row
			// broadcast it" — point-to-point to every sibling worker, which
			// is CN broadcast semantics restricted to the worker group.
			rowK = append([]int64(nil), localRow(k)...)
			rm := encodeWire(&wire{Kind: "row", K: k, Row: rowK})
			for w := 0; w < workers; w++ {
				if w == self {
					continue
				}
				if err := ctx.Send(workerName(prefix, w), rm); err != nil {
					return fmt.Errorf("floyd: worker %d: broadcast row %d: %w", idx1, k, err)
				}
			}
		} else {
			for pendingRows[k] == nil {
				if err := recvNext(); err != nil {
					return fmt.Errorf("floyd: worker %d: waiting for row %d: %w", idx1, k, err)
				}
			}
			rowK = pendingRows[k]
			delete(pendingRows, k)
		}
		// Apply step k to the local block.
		for i := start; i < end; i++ {
			ri := localRow(i)
			dik := ri[k]
			if dik >= Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if d := dik + rowK[j]; d < ri[j] {
					ri[j] = d
				}
			}
		}
	}
	res := &wire{Kind: "result", N: n, Start: start, End: end, Rows: local.D}
	if err := ctx.Send(joinName, encodeWire(res)); err != nil {
		return fmt.Errorf("floyd: worker %d: send result: %w", idx1, err)
	}
	return nil
}

// TCJoin collates the results ("The collation of the results is done by yet
// another task named TCJoin") and returns the assembled matrix to the
// client. Parameters: [0] workers W (Integer).
type TCJoin struct{}

// Run implements task.Task.
func (*TCJoin) Run(ctx task.Context) error {
	workers, err := task.IntParam(ctx.Params(), 0)
	if err != nil {
		return fmt.Errorf("floyd: join: %w", err)
	}
	var out *Matrix
	received := 0
	for received < workers {
		_, data, err := ctx.Recv()
		if err != nil {
			return fmt.Errorf("floyd: join: %w", err)
		}
		w, err := decodeWire(data)
		if err != nil {
			return err
		}
		if w.Kind != "result" {
			ctx.Logf("join: ignoring %q message", w.Kind)
			continue
		}
		if out == nil {
			out = NewMatrix(w.N)
		}
		copy(out.D[w.Start*w.N:w.End*w.N], w.Rows)
		received++
	}
	final := &wire{Kind: "result", N: out.N, Start: 0, End: out.N, Rows: out.D}
	if err := ctx.SendClient(encodeWire(final)); err != nil {
		return fmt.Errorf("floyd: join: send to client: %w", err)
	}
	return nil
}

// EncodeMatrixMessage packages a matrix as the user message TaskSplit
// expects from the client.
func EncodeMatrixMessage(m *Matrix) []byte {
	return encodeWire(&wire{Kind: "matrix", N: m.N, Rows: m.D})
}

// DecodeResultMessage unpacks TCJoin's final result message.
func DecodeResultMessage(data []byte) (*Matrix, error) {
	w, err := decodeWire(data)
	if err != nil {
		return nil, err
	}
	if w.Kind != "result" {
		return nil, fmt.Errorf("floyd: expected result message, got %q", w.Kind)
	}
	return &Matrix{N: w.N, D: w.Rows}, nil
}
