// Package floyd implements the paper's guiding example: "the parallel
// version of Floyd's all-pairs shortest-path algorithm ... based on a
// one-dimensional, row-wise domain decomposition of the intermediate matrix
// I and the output matrix S" (paper §2).
//
// The package provides the distance-matrix representation and text format
// (the paper's matrix.txt), deterministic graph generators, the sequential
// Floyd–Warshall baseline, the boolean transitive-closure variant, and the
// three CN task classes — TaskSplit, TCTask, TCJoin — that reproduce the
// paper's decomposition on a CN cluster.
package floyd

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Inf is the "no edge / unreachable" distance. It is large enough that one
// addition cannot overflow int64.
const Inf int64 = 1 << 60

// Matrix is a dense N x N distance matrix in row-major order.
type Matrix struct {
	N int
	D []int64
}

// NewMatrix creates an N x N matrix with zero diagonal and Inf elsewhere.
func NewMatrix(n int) *Matrix {
	m := &Matrix{N: n, D: make([]int64, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m.D[i*n+j] = 0
			} else {
				m.D[i*n+j] = Inf
			}
		}
	}
	return m
}

// At returns d(i,j).
func (m *Matrix) At(i, j int) int64 { return m.D[i*m.N+j] }

// Set assigns d(i,j).
func (m *Matrix) Set(i, j int, v int64) { m.D[i*m.N+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []int64 { return m.D[i*m.N : (i+1)*m.N] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{N: m.N, D: append([]int64(nil), m.D...)}
}

// Equal reports element-wise equality.
func (m *Matrix) Equal(o *Matrix) bool {
	if o == nil || m.N != o.N {
		return false
	}
	for i, v := range m.D {
		if o.D[i] != v {
			return false
		}
	}
	return true
}

// Format writes the matrix.txt text form: first line N, then N rows of
// space-separated entries with "inf" for unreachable.
func (m *Matrix) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", m.N); err != nil {
		return fmt.Errorf("floyd: format: %w", err)
	}
	for i := 0; i < m.N; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return fmt.Errorf("floyd: format: %w", err)
				}
			}
			var s string
			if v >= Inf {
				s = "inf"
			} else {
				s = strconv.FormatInt(v, 10)
			}
			if _, err := bw.WriteString(s); err != nil {
				return fmt.Errorf("floyd: format: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("floyd: format: %w", err)
		}
	}
	return bw.Flush()
}

// String renders the matrix.txt form.
func (m *Matrix) String() string {
	var sb strings.Builder
	_ = m.Format(&sb)
	return sb.String()
}

// Parse reads the matrix.txt text form.
func Parse(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var n int
	if _, err := fmt.Fscanf(br, "%d\n", &n); err != nil {
		return nil, fmt.Errorf("floyd: parse: header: %w", err)
	}
	if n <= 0 {
		return nil, fmt.Errorf("floyd: parse: invalid size %d", n)
	}
	m := &Matrix{N: n, D: make([]int64, 0, n*n)}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	row := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != n {
			return nil, fmt.Errorf("floyd: parse: row %d has %d entries, want %d", row, len(fields), n)
		}
		for _, f := range fields {
			if f == "inf" {
				m.D = append(m.D, Inf)
				continue
			}
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("floyd: parse: row %d: %w", row, err)
			}
			m.D = append(m.D, v)
		}
		row++
		if row == n {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("floyd: parse: %w", err)
	}
	if row != n {
		return nil, fmt.Errorf("floyd: parse: got %d rows, want %d", row, n)
	}
	return m, nil
}

// ParseString parses the matrix.txt form from a string.
func ParseString(s string) (*Matrix, error) { return Parse(strings.NewReader(s)) }

// RandomGraph generates a deterministic random weighted digraph: each
// ordered pair (i != j) has an edge with the given probability and uniform
// weight in [1, maxWeight].
func RandomGraph(n int, density float64, maxWeight int64, seed int64) *Matrix {
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if rng.Float64() < density {
				m.Set(i, j, 1+rng.Int63n(maxWeight))
			}
		}
	}
	return m
}

// RingGraph generates a directed cycle 0 -> 1 -> ... -> n-1 -> 0 with unit
// weights: its shortest paths are known in closed form, which makes it a
// good verification workload.
func RingGraph(n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, (i+1)%n, 1)
	}
	return m
}

// Sequential runs the classic O(N^3) Floyd–Warshall on a copy of m and
// returns the all-pairs shortest-path matrix — the baseline the parallel
// version is checked against.
func Sequential(m *Matrix) *Matrix {
	s := m.Clone()
	n := s.N
	for k := 0; k < n; k++ {
		rowK := s.Row(k)
		for i := 0; i < n; i++ {
			rowI := s.Row(i)
			dik := rowI[k]
			if dik >= Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if d := dik + rowK[j]; d < rowI[j] {
					rowI[j] = d
				}
			}
		}
	}
	return s
}

// Closure computes the boolean transitive closure (Warshall) of the graph:
// out[i][j] reports whether j is reachable from i in one or more steps (the
// diagonal is reachable with distance zero by convention).
func Closure(m *Matrix) [][]bool {
	n := m.N
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			reach[i][j] = i == j || m.At(i, j) < Inf
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			rk := reach[k]
			ri := reach[i]
			for j := 0; j < n; j++ {
				if rk[j] {
					ri[j] = true
				}
			}
		}
	}
	return reach
}

// UpdateRows applies one Floyd step k to the row block [start, end) of dst
// given row k. This is the worker's inner kernel, shared by the CN task and
// the striped in-process parallel baseline.
func UpdateRows(dst *Matrix, start, end, k int, rowK []int64) {
	for i := start; i < end; i++ {
		rowI := dst.Row(i)
		dik := rowI[k]
		if dik >= Inf {
			continue
		}
		for j := range rowI {
			if d := dik + rowK[j]; d < rowI[j] {
				rowI[j] = d
			}
		}
	}
}

// BlockBounds returns the row range [start, end) owned by worker idx (0
// based) of total workers over n rows — the paper's contiguous row-wise
// decomposition.
func BlockBounds(n, workers, idx int) (start, end int) {
	start = idx * n / workers
	end = (idx + 1) * n / workers
	return start, end
}

// OwnerOf returns which worker (0-based) owns row k.
func OwnerOf(n, workers, k int) int {
	// Inverse of BlockBounds for contiguous blocks.
	for w := 0; w < workers; w++ {
		s, e := BlockBounds(n, workers, w)
		if k >= s && k < e {
			return w
		}
	}
	return workers - 1
}

// VerifyShortestPaths checks the defining invariants of an APSP result:
// zero diagonal, no negative distances (for non-negative inputs), and the
// triangle inequality d(i,j) <= d(i,k) + d(k,j).
func VerifyShortestPaths(s *Matrix) error {
	n := s.N
	for i := 0; i < n; i++ {
		if s.At(i, i) != 0 {
			return fmt.Errorf("floyd: verify: d(%d,%d) = %d, want 0", i, i, s.At(i, i))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if s.At(i, j) < 0 {
				return fmt.Errorf("floyd: verify: negative distance d(%d,%d) = %d", i, j, s.At(i, j))
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := s.At(i, k)
			if dik >= Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if dkj := s.At(k, j); dkj < Inf && s.At(i, j) > dik+dkj {
					return fmt.Errorf("floyd: verify: triangle violation d(%d,%d)=%d > d(%d,%d)+d(%d,%d)=%d",
						i, j, s.At(i, j), i, k, k, j, dik+dkj)
				}
			}
		}
	}
	return nil
}

// ParallelInProcess runs the row-decomposed algorithm with plain goroutines
// and channels inside one process — the hand-coded baseline a CN user would
// write without the framework, used for overhead comparisons.
func ParallelInProcess(m *Matrix, workers int) *Matrix {
	if workers < 1 {
		workers = 1
	}
	if workers > m.N {
		workers = m.N
	}
	s := m.Clone()
	n := s.N
	// Broadcast channels: one per step, closed once the row is published.
	type step struct {
		row []int64
		ch  chan struct{}
	}
	steps := make([]step, n)
	for k := range steps {
		steps[k].ch = make(chan struct{})
	}
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			start, end := BlockBounds(n, workers, w)
			for k := 0; k < n; k++ {
				if OwnerOf(n, workers, k) == w {
					// Publish row k for everyone else, then update.
					steps[k].row = append([]int64(nil), s.Row(k)...)
					close(steps[k].ch)
				}
				<-steps[k].ch
				UpdateRows(s, start, end, k, steps[k].row)
			}
			done <- w
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	return s
}
