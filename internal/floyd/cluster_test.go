package floyd_test

import (
	"context"
	"testing"
	"time"

	"cn/internal/api"
	"cn/internal/cluster"
	"cn/internal/floyd"
	"cn/internal/task"
)

// registry with the transitive-closure tasks deployed.
var registry = func() *task.Registry {
	r := task.NewRegistry()
	floyd.MustRegister(r)
	return r
}()

func startCluster(t *testing.T, nodes int) *api.Client {
	t.Helper()
	c, err := cluster.Start(cluster.Config{Nodes: nodes, Registry: registry, MemoryMB: 32000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	cl, err := api.Initialize(c.Network(), api.Options{DiscoveryWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func runAndVerify(t *testing.T, cl *api.Client, n, workers int, seed int64) {
	t.Helper()
	m := floyd.RandomGraph(n, 0.2, 9, seed)
	want := floyd.Sequential(m)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := floyd.Run(ctx, cl, m, workers)
	if err != nil {
		t.Fatalf("Run(n=%d, workers=%d): %v", n, workers, err)
	}
	if !got.Equal(want) {
		t.Fatalf("n=%d workers=%d: CN result differs from sequential Floyd", n, workers)
	}
	if err := floyd.VerifyShortestPaths(got); err != nil {
		t.Fatal(err)
	}
}

func TestCNFloydSingleWorker(t *testing.T) {
	cl := startCluster(t, 2)
	runAndVerify(t, cl, 16, 1, 1)
}

func TestCNFloydFourWorkers(t *testing.T) {
	cl := startCluster(t, 4)
	runAndVerify(t, cl, 32, 4, 2)
}

func TestCNFloydMoreWorkersThanNodes(t *testing.T) {
	// 8 workers across 3 nodes: multiple tasks per TaskManager.
	cl := startCluster(t, 3)
	runAndVerify(t, cl, 24, 8, 3)
}

func TestCNFloydUnevenBlocks(t *testing.T) {
	// 17 rows over 5 workers: uneven contiguous blocks.
	cl := startCluster(t, 3)
	runAndVerify(t, cl, 17, 5, 4)
}

func TestCNFloydRing(t *testing.T) {
	cl := startCluster(t, 3)
	m := floyd.RingGraph(20)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := floyd.Run(ctx, cl, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			want := int64((j - i + m.N) % m.N)
			if got.At(i, j) != want {
				t.Fatalf("d(%d,%d) = %d, want %d", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestCNFloydSequentialJobsReuseClient(t *testing.T) {
	cl := startCluster(t, 3)
	for seed := int64(10); seed < 13; seed++ {
		runAndVerify(t, cl, 12, 3, seed)
	}
}

func TestCNFloydTooManyWorkersFails(t *testing.T) {
	// The algorithm allows at most N tasks (paper §2); the split task must
	// reject more workers than rows and the job must fail cleanly.
	cl := startCluster(t, 2)
	m := floyd.RandomGraph(3, 0.5, 5, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := floyd.Run(ctx, cl, m, 8)
	if err == nil {
		t.Fatal("8 workers over 3 rows should fail")
	}
}
