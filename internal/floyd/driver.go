package floyd

import (
	"context"
	"fmt"
	"strconv"

	"cn/internal/api"
	"cn/internal/archive"
	"cn/internal/core"
	"cn/internal/protocol"
	"cn/internal/task"
)

// Canonical task names, following the paper's Figure 2 descriptor
// (tctask0 = splitter, tctask1..N = workers, tctask999 = joiner).
const (
	SplitTaskName = "tctask0"
	WorkerPrefix  = "tctask"
	JoinTaskName  = "tctask999"
)

// workerParams builds the TCTask parameter list for worker idx (1-based).
func workerParams(idx, workers int) []task.Param {
	return []task.Param{
		{Type: task.TypeInteger, Value: strconv.Itoa(idx)}, // the paper's pvalue0
		{Type: task.TypeInteger, Value: strconv.Itoa(workers)},
		{Type: task.TypeString, Value: WorkerPrefix},
		{Type: task.TypeString, Value: JoinTaskName},
	}
}

// Specs returns the full task list for a transitive-closure job with the
// given worker count, mirroring the paper's descriptor shape.
func Specs(workers int) ([]*task.Spec, error) {
	if workers < 1 {
		return nil, fmt.Errorf("floyd: specs: need >= 1 worker")
	}
	req := task.DefaultRequirements()
	specs := []*task.Spec{{
		Name:    SplitTaskName,
		Archive: JarTaskSplit,
		Class:   ClassTaskSplit,
		Params: []task.Param{
			{Type: task.TypeInteger, Value: strconv.Itoa(workers)},
			{Type: task.TypeString, Value: WorkerPrefix},
		},
		Req: req,
	}}
	var workerNames []string
	for i := 1; i <= workers; i++ {
		name := fmt.Sprintf("%s%d", WorkerPrefix, i)
		workerNames = append(workerNames, name)
		specs = append(specs, &task.Spec{
			Name:      name,
			Archive:   JarTCTask,
			Class:     ClassTCTask,
			DependsOn: []string{SplitTaskName},
			Params:    workerParams(i, workers),
			Req:       req,
		})
	}
	specs = append(specs, &task.Spec{
		Name:      JoinTaskName,
		Archive:   JarTCJoin,
		Class:     ClassTCJoin,
		DependsOn: workerNames,
		Params: []task.Param{
			{Type: task.TypeInteger, Value: strconv.Itoa(workers)},
		},
		Req: req,
	})
	return specs, nil
}

// BuildModel constructs the paper's Figure 3 activity graph (explicit
// concurrency) for the transitive-closure job, with runnable parameters on
// every action state.
func BuildModel(workers int) (*core.Graph, error) {
	specs, err := Specs(workers)
	if err != nil {
		return nil, err
	}
	b := core.NewBuilder("transclosure").Initial("initial")
	for _, s := range specs {
		tags := core.TaskTags(s.Archive, s.Class, s.Req.MemoryMB, s.Req.RunModel.String())
		for i, p := range s.Params {
			tags.SetParam(i, string(p.Type), p.Value)
		}
		b.Action(s.Name, tags)
	}
	b.Final("final").Flow("initial", SplitTaskName)
	if workers == 1 {
		b.Flows(SplitTaskName, WorkerPrefix+"1", JoinTaskName, "final")
		return b.Build()
	}
	b.Fork("fork").Join("joinbar").Flow(SplitTaskName, "fork")
	for i := 1; i <= workers; i++ {
		name := fmt.Sprintf("%s%d", WorkerPrefix, i)
		b.Flow("fork", name).Flow(name, "joinbar")
	}
	b.Flows("joinbar", JoinTaskName, "final")
	return b.Build()
}

// BuildDynamicModel constructs the paper's Figure 5 variant: one dynamic
// invocation worker state whose multiplicity is decided at run time by the
// "rowBlocks" argument expression.
func BuildDynamicModel() (*core.Graph, error) {
	split := core.TaskTags(JarTaskSplit, ClassTaskSplit, 1000, "RUN_AS_THREAD_IN_TM")
	worker := core.TaskTags(JarTCTask, ClassTCTask, 1000, "RUN_AS_THREAD_IN_TM")
	join := core.TaskTags(JarTCJoin, ClassTCJoin, 1000, "RUN_AS_THREAD_IN_TM")
	return core.NewBuilder("transclosure-dynamic").
		Initial("initial").
		Action(SplitTaskName, split).
		DynamicAction(WorkerPrefix, worker, "*", "rowBlocks").
		Action(JoinTaskName, join).
		Final("final").
		Flows("initial", SplitTaskName, WorkerPrefix, JoinTaskName, "final").
		Build()
}

// DynamicArgs returns the run-time argument provider for BuildDynamicModel:
// the "rowBlocks" expression evaluates to one full TCTask argument list per
// worker — index, worker count, prefix, and join task name.
func DynamicArgs(workers int) core.ArgProvider {
	return func(expr string) ([][]task.Param, error) {
		if expr != "rowBlocks" {
			return nil, fmt.Errorf("floyd: unknown argument expression %q", expr)
		}
		lists := make([][]task.Param, workers)
		for i := range lists {
			lists[i] = workerParams(i+1, workers)
		}
		return lists, nil
	}
}

// Archives builds the three task archives (the paper's JAR files).
func Archives() (map[string]*archive.Archive, error) {
	out := make(map[string]*archive.Archive, 3)
	for _, def := range []struct{ jar, class string }{
		{JarTaskSplit, ClassTaskSplit},
		{JarTCTask, ClassTCTask},
		{JarTCJoin, ClassTCJoin},
	} {
		a, err := archive.NewBuilder(def.jar, def.class).Version("1.0").Build()
		if err != nil {
			return nil, fmt.Errorf("floyd: archives: %w", err)
		}
		out[def.jar] = a
	}
	return out, nil
}

// Run executes the transitive-closure job on a CN cluster through the
// client API and returns the all-pairs shortest-path matrix. It is the
// generated client program's core logic: create job, create tasks, start,
// feed the input matrix, await the joiner's result.
func Run(ctx context.Context, cl *api.Client, m *Matrix, workers int) (*Matrix, error) {
	specs, err := Specs(workers)
	if err != nil {
		return nil, err
	}
	archives, err := Archives()
	if err != nil {
		return nil, err
	}
	job, err := cl.CreateJob("transclosure", protocol.JobRequirements{})
	if err != nil {
		return nil, err
	}
	for _, s := range specs {
		if err := job.CreateTask(s, archives[s.Archive]); err != nil {
			return nil, err
		}
	}
	if err := job.Start(); err != nil {
		return nil, err
	}
	if err := job.SendMessage(SplitTaskName, EncodeMatrixMessage(m)); err != nil {
		return nil, err
	}
	// Stop waiting for messages once the job terminates: any result sent
	// before termination is already queued, so a cancelled GetMessage here
	// means the job failed without producing one.
	msgCtx, cancelMsg := context.WithCancel(ctx)
	defer cancelMsg()
	go func() {
		select {
		case <-job.Done():
			cancelMsg()
		case <-msgCtx.Done():
		}
	}()
	var result *Matrix
	for result == nil {
		from, data, err := job.GetMessage(msgCtx)
		if err != nil {
			res, werr := job.Wait(ctx)
			if werr != nil {
				return nil, fmt.Errorf("floyd: run: %w", err)
			}
			return nil, fmt.Errorf("floyd: run: job terminated without result: %s (%v)", res.Err, res.TaskErrs)
		}
		if from != JoinTaskName {
			continue
		}
		result, err = DecodeResultMessage(data)
		if err != nil {
			return nil, err
		}
	}
	res, err := job.Wait(ctx)
	if err != nil {
		return nil, err
	}
	if res.Failed {
		return nil, fmt.Errorf("floyd: run: job failed: %s (%v)", res.Err, res.TaskErrs)
	}
	return result, nil
}
