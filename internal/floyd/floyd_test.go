package floyd

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewMatrix(t *testing.T) {
	m := NewMatrix(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := Inf
			if i == j {
				want = 0
			}
			if m.At(i, j) != want {
				t.Errorf("At(%d,%d) = %d", i, j, m.At(i, j))
			}
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	m := RandomGraph(12, 0.3, 9, 42)
	s := m.String()
	if !strings.HasPrefix(s, "12\n") {
		t.Errorf("header: %q", s[:10])
	}
	if !strings.Contains(s, "inf") {
		t.Error("no inf entries in sparse graph")
	}
	p, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(m) {
		t.Error("round trip mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"abc\n",
		"0\n",
		"-3\n",
		"2\n1 2 3\n4 5 6\n", // wrong width
		"2\n1 2\n",          // missing row
		"2\n1 x\n3 4\n",     // bad entry
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("Parse(%q) accepted", c)
		}
	}
}

func TestSequentialRing(t *testing.T) {
	const n = 8
	s := Sequential(RingGraph(n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := int64((j - i + n) % n)
			if s.At(i, j) != want {
				t.Errorf("d(%d,%d) = %d, want %d", i, j, s.At(i, j), want)
			}
		}
	}
}

func TestSequentialDisconnected(t *testing.T) {
	m := NewMatrix(4)
	m.Set(0, 1, 5)
	// nodes 2,3 disconnected from 0,1
	m.Set(2, 3, 7)
	s := Sequential(m)
	if s.At(0, 1) != 5 || s.At(2, 3) != 7 {
		t.Error("direct edges wrong")
	}
	if s.At(0, 2) != Inf || s.At(1, 3) != Inf || s.At(3, 0) != Inf {
		t.Error("disconnected pairs should stay Inf")
	}
}

func TestSequentialTriangleImprovement(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 1)
	m.Set(1, 2, 1)
	m.Set(0, 2, 10)
	s := Sequential(m)
	if s.At(0, 2) != 2 {
		t.Errorf("d(0,2) = %d, want 2 via node 1", s.At(0, 2))
	}
}

func TestVerifyShortestPaths(t *testing.T) {
	s := Sequential(RandomGraph(20, 0.2, 9, 7))
	if err := VerifyShortestPaths(s); err != nil {
		t.Fatal(err)
	}
	bad := s.Clone()
	bad.Set(0, 0, 3)
	if err := VerifyShortestPaths(bad); err == nil {
		t.Error("nonzero diagonal accepted")
	}
	bad2 := s.Clone()
	// Introduce a triangle violation if possible.
	bad2.Set(0, 1, Inf-1)
	if err := VerifyShortestPaths(bad2); err == nil {
		// Only an error if a 2-hop path 0->k->1 is shorter; with density
		// 0.2 over 20 nodes this is effectively certain.
		t.Log("no triangle violation detected; graph may be too sparse")
	}
}

func TestClosureMatchesSequential(t *testing.T) {
	m := RandomGraph(15, 0.15, 5, 3)
	s := Sequential(m)
	reach := Closure(m)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			want := i == j || s.At(i, j) < Inf
			if reach[i][j] != want {
				t.Errorf("reach(%d,%d) = %v, want %v", i, j, reach[i][j], want)
			}
		}
	}
}

func TestBlockBoundsCoverAllRows(t *testing.T) {
	for _, n := range []int{1, 5, 16, 17, 100} {
		for _, w := range []int{1, 2, 3, 7, 16} {
			if w > n {
				continue
			}
			covered := 0
			prevEnd := 0
			for idx := 0; idx < w; idx++ {
				s, e := BlockBounds(n, w, idx)
				if s != prevEnd {
					t.Errorf("n=%d w=%d idx=%d: start %d != prev end %d", n, w, idx, s, prevEnd)
				}
				covered += e - s
				prevEnd = e
			}
			if covered != n || prevEnd != n {
				t.Errorf("n=%d w=%d: covered %d rows", n, w, covered)
			}
		}
	}
}

func TestOwnerOfConsistent(t *testing.T) {
	const n, w = 23, 5
	for k := 0; k < n; k++ {
		o := OwnerOf(n, w, k)
		s, e := BlockBounds(n, w, o)
		if k < s || k >= e {
			t.Errorf("row %d assigned to worker %d with range [%d,%d)", k, o, s, e)
		}
	}
}

func TestParallelInProcessMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		m := RandomGraph(33, 0.25, 9, int64(workers)+100)
		want := Sequential(m)
		got := ParallelInProcess(m, workers)
		if !got.Equal(want) {
			t.Errorf("workers=%d: parallel result differs from sequential", workers)
		}
	}
}

func TestParallelInProcessMoreWorkersThanRows(t *testing.T) {
	m := RandomGraph(3, 0.5, 5, 9)
	got := ParallelInProcess(m, 16)
	if !got.Equal(Sequential(m)) {
		t.Error("clamped worker count produced wrong result")
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := RandomGraph(10, 0.3, 9, 5)
	b := RandomGraph(10, 0.3, 9, 5)
	if !a.Equal(b) {
		t.Error("same seed produced different graphs")
	}
	c := RandomGraph(10, 0.3, 9, 6)
	if a.Equal(c) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestSequentialIdempotent(t *testing.T) {
	// Floyd of a shortest-path matrix is a fixed point.
	f := func(seed int64) bool {
		m := RandomGraph(12, 0.3, 9, seed)
		s := Sequential(m)
		return Sequential(s).Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := RingGraph(4)
	c := m.Clone()
	c.Set(0, 1, 99)
	if m.At(0, 1) != 1 {
		t.Error("Clone aliases original")
	}
}

func TestMatrixEqualEdgeCases(t *testing.T) {
	m := RingGraph(4)
	if m.Equal(nil) {
		t.Error("Equal(nil)")
	}
	if m.Equal(RingGraph(5)) {
		t.Error("Equal across sizes")
	}
}

func TestSpecsShape(t *testing.T) {
	specs, err := Specs(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 7 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[0].Name != "tctask0" || specs[0].Class != ClassTaskSplit {
		t.Errorf("split = %+v", specs[0])
	}
	join := specs[len(specs)-1]
	if join.Name != "tctask999" || len(join.DependsOn) != 5 {
		t.Errorf("join = %+v", join)
	}
	w3 := specs[3]
	if w3.Name != "tctask3" {
		t.Fatalf("specs[3] = %q", w3.Name)
	}
	if v, err := w3.Params[0].Int(); err != nil || v != 3 {
		t.Errorf("worker pvalue0 = %v, %v", v, err)
	}
	if _, err := Specs(0); err == nil {
		t.Error("Specs(0) accepted")
	}
}

func TestBuildModelValidates(t *testing.T) {
	for _, w := range []int{1, 2, 5} {
		g, err := BuildModel(w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		deps, err := g.Dependencies()
		if err != nil {
			t.Fatal(err)
		}
		if len(deps[JoinTaskName]) != w {
			t.Errorf("workers=%d: join deps = %v", w, deps[JoinTaskName])
		}
	}
}

func TestBuildDynamicModel(t *testing.T) {
	g, err := BuildDynamicModel()
	if err != nil {
		t.Fatal(err)
	}
	n := g.Node(WorkerPrefix)
	if n == nil || !n.Dynamic || n.ArgExpr != "rowBlocks" {
		t.Fatalf("dynamic node = %+v", n)
	}
	args := DynamicArgs(3)
	lists, err := args("rowBlocks")
	if err != nil {
		t.Fatal(err)
	}
	if len(lists) != 3 || len(lists[0]) != 4 {
		t.Errorf("arg lists = %v", lists)
	}
	if _, err := args("unknown"); err == nil {
		t.Error("unknown expression accepted")
	}
}

func TestArchives(t *testing.T) {
	ars, err := Archives()
	if err != nil {
		t.Fatal(err)
	}
	if len(ars) != 3 {
		t.Fatalf("archives = %d", len(ars))
	}
	if ars[JarTCTask].Manifest.TaskClass != ClassTCTask {
		t.Errorf("manifest = %+v", ars[JarTCTask].Manifest)
	}
}

func TestWireCodec(t *testing.T) {
	m := RingGraph(4)
	data := EncodeMatrixMessage(m)
	w, err := decodeWire(data)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != "matrix" || w.N != 4 {
		t.Errorf("wire = %+v", w)
	}
	if _, err := decodeWire([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeResultMessage(data); err == nil {
		t.Error("matrix message accepted as result")
	}
}
