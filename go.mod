module cn

go 1.22
