// Mapreduce runs the word-count workload: a splitter scatters text chunks
// across mappers, mappers count words, a reducer merges the partial counts
// — the scatter/gather composition the CN programming model is built for.
// The shuffle data (chunks and partials) moves over the direct task-to-task
// data plane (ctx.Put/ctx.Get), pulled TM→TM instead of relayed through the
// JobManager; the example prints the bytes that took the direct path.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"cn"
	"cn/internal/workloads"
)

const corpus = `in the general area of high performance computing
object oriented methods have gone largely unnoticed
the computational neighborhood is a framework for parallel and distributed
computing with a focus on cluster computing designed from the ground up
to be object oriented
clustering is the use of multiple computers to form what appears to users
as a single computing resource
cluster computing can also be used as a relatively low cost form of
parallel processing for scientific applications`

func main() {
	var mappers = flag.Int("mappers", 4, "mapper task count")
	flag.Parse()

	registry := cn.NewRegistry()
	workloads.MustRegister(registry)

	cluster, err := cn.StartCluster(cn.ClusterOptions{Nodes: 3, Registry: registry})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := cn.Connect(cluster, cn.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	counts, err := workloads.RunWordCount(ctx, client, corpus, *mappers)
	if err != nil {
		log.Fatal(err)
	}

	// Cross-check against the sequential baseline.
	want := workloads.SequentialWordCount(corpus)
	for w, c := range want {
		if counts[w] != c {
			log.Fatalf("mismatch for %q: cluster %d, sequential %d", w, counts[w], c)
		}
	}

	type wc struct {
		word  string
		count int
	}
	var list []wc
	for w, c := range counts {
		list = append(list, wc{w, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].count != list[j].count {
			return list[i].count > list[j].count
		}
		return list[i].word < list[j].word
	})
	fmt.Printf("word count over %d mappers (%d distinct words, verified against sequential):\n",
		*mappers, len(counts))
	for i, e := range list {
		if i == 10 {
			break
		}
		fmt.Printf("  %-14s %d\n", e.word, e.count)
	}
	served, fetched := cluster.DataplaneBytes()
	dp := cluster.DataplaneStats()
	fmt.Printf("data plane: %d adverts, %d resolves; %d bytes fetched TM→TM (%d served), %d bytes answered from inline advert copies\n",
		dp.Puts, dp.Resolves, fetched, served, dp.InlineBytes)
}
