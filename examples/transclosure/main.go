// Transclosure runs the paper's guiding example end to end: the parallel
// version of Floyd's all-pairs shortest-path algorithm with a TaskSplit
// task, TCTask workers coordinating row broadcasts, and a TCJoin collator —
// and checks the result against the sequential baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"cn"
	"cn/internal/floyd"
)

func main() {
	var (
		n       = flag.Int("n", 64, "graph size (nodes)")
		workers = flag.Int("workers", 4, "TCTask worker count")
		nodes   = flag.Int("nodes", 4, "cluster size")
		seed    = flag.Int64("seed", 42, "graph seed")
	)
	flag.Parse()

	registry := cn.NewRegistry()
	floyd.MustRegister(registry)

	cluster, err := cn.StartCluster(cn.ClusterOptions{Nodes: *nodes, Registry: registry, MemoryMB: 32000})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := cn.Connect(cluster, cn.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	m := floyd.RandomGraph(*n, 0.25, 9, *seed)
	fmt.Printf("input: %d-node random graph, %d workers on a %d-node cluster\n", *n, *workers, *nodes)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	start := time.Now()
	got, err := floyd.Run(ctx, client, m, *workers)
	if err != nil {
		log.Fatal(err)
	}
	cnTime := time.Since(start)

	start = time.Now()
	want := floyd.Sequential(m)
	seqTime := time.Since(start)

	if !got.Equal(want) {
		log.Fatal("CN result differs from sequential Floyd-Warshall")
	}
	if err := floyd.VerifyShortestPaths(got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CN parallel: %v   sequential: %v   (results identical, invariants hold)\n", cnTime, seqTime)

	// Show a corner of the distance matrix.
	fmt.Println("d(i,j) for i,j < 6:")
	for i := 0; i < 6 && i < got.N; i++ {
		for j := 0; j < 6 && j < got.N; j++ {
			if v := got.At(i, j); v >= floyd.Inf {
				fmt.Printf("%5s", "inf")
			} else {
				fmt.Printf("%5d", v)
			}
		}
		fmt.Println()
	}
}
