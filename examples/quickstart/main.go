// Quickstart: boot a CN cluster, register a task class, compose a job of
// three dependent tasks, run it, and read the tasks' messages — the
// five-minute tour of the CN API the paper's §3 enumerates (initialize,
// create job, create tasks, start, get messages).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cn"
)

func main() {
	// Task classes are registered the way JARs are deployed: once per
	// process, before the servers boot.
	registry := cn.NewRegistry()
	registry.MustRegister("quickstart.Greeter", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			who, err := ctx.Params()[0].String(), error(nil)
			if err != nil {
				return err
			}
			return ctx.SendClient([]byte("hello from " + ctx.TaskName() + " to " + who))
		})
	})

	// 1. Boot a four-node cluster (each node runs a CNServer: one
	//    JobManager plus one TaskManager, discovered over multicast).
	cluster, err := cn.StartCluster(cn.ClusterOptions{Nodes: 4, Registry: registry})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// 2. Initialize the CN API (the factory step).
	client, err := cn.Connect(cluster, cn.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// 3. Create a job; discovery picks a willing JobManager.
	job, err := client.CreateJob("greetings", cn.JobRequirements{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Create tasks: "first" runs alone, then "second" and "third" run
	//    concurrently once it completes.
	for _, spec := range []*cn.TaskSpec{
		{Name: "first", Class: "quickstart.Greeter",
			Params: []cn.Param{{Type: cn.TypeString, Value: "world"}},
			Req:    cn.Requirements{MemoryMB: 100, RunModel: cn.RunAsThreadInTM}},
		{Name: "second", Class: "quickstart.Greeter", DependsOn: []string{"first"},
			Params: []cn.Param{{Type: cn.TypeString, Value: "cluster"}},
			Req:    cn.Requirements{MemoryMB: 100, RunModel: cn.RunAsThreadInTM}},
		{Name: "third", Class: "quickstart.Greeter", DependsOn: []string{"first"},
			Params: []cn.Param{{Type: cn.TypeString, Value: "neighborhood"}},
			Req:    cn.Requirements{MemoryMB: 100, RunModel: cn.RunAsThreadInTM}},
	} {
		if err := job.CreateTask(spec, nil); err != nil {
			log.Fatal(err)
		}
	}

	// 5. Start the tasks and get their messages.
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		from, data, err := job.GetMessage(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", from, data)
	}
	res, err := job.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s finished (failed=%v)\n", res.JobID, res.Failed)
}
