// Bagoftasks demonstrates the paper's second coordination mechanism ("CN
// also supports communication via tuple spaces...") as a replicated-worker
// bag of tasks: a pool of identical workers steals work items from the
// job's tuple space, so load balances dynamically — fast nodes simply take
// more chunks — without any task-to-task messaging or central dispatcher.
//
// The job counts primes below -n. The client seeds ("range", lo, hi)
// tuples into the space; each worker loops In(("range", ?, ?)), sieves the
// chunk, and Outs ("count", lo, n). The client collects counts, re-seeds
// chunks whose results do not arrive (the at-most-once answer to a worker
// dying between In and Out), and finally Outs one poison pill per worker.
// With -kill a worker node is power-cut mid-run: its tasks are re-placed
// by the recovery engine, the fresh instances reconnect to the same space,
// and the run still completes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"cn"
)

// countPrimes counts primes in [lo, hi) by trial division — deliberately
// unoptimized compute so chunks cost real work.
func countPrimes(lo, hi int) int {
	n := 0
	for x := lo; x < hi; x++ {
		if x < 2 {
			continue
		}
		prime := true
		for d := 2; d*d <= x; d++ {
			if x%d == 0 {
				prime = false
				break
			}
		}
		if prime {
			n++
		}
	}
	return n
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bagoftasks: ")
	var (
		limit   = flag.Int("n", 50000, "count primes below this bound")
		chunk   = flag.Int("chunk", 2500, "work-item size (numbers per range tuple)")
		workers = flag.Int("workers", 3, "replicated worker tasks")
		nodes   = flag.Int("nodes", 4, "cluster size")
		kill    = flag.Bool("kill", false, "power-cut a worker node mid-run to show recovery")
	)
	flag.Parse()

	registry := cn.NewRegistry()
	registry.MustRegister("bag.Worker", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			for {
				t, err := ctx.In(cn.Template{"range", cn.TypeOf(0), cn.TypeOf(0)})
				if errors.Is(err, cn.ErrSpaceClosed) {
					return nil // job torn down while parked
				}
				if err != nil {
					return err
				}
				lo, hi := t[1].(int), t[2].(int)
				if lo < 0 {
					return nil // poison pill
				}
				if err := ctx.Out(cn.Tuple{"count", lo, countPrimes(lo, hi)}); err != nil {
					return err
				}
			}
		})
	})

	cluster, err := cn.StartCluster(cn.ClusterOptions{
		Nodes:    *nodes,
		Registry: registry,
		// Aggressive failure detection so the -kill demo recovers in
		// milliseconds instead of seconds.
		HeartbeatInterval: 20 * time.Millisecond,
		MaxTaskRetries:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := cn.Connect(cluster, cn.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	job, err := client.CreateJob("bagoftasks", cn.JobRequirements{})
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]*cn.TaskSpec, *workers)
	for i := range specs {
		specs[i] = &cn.TaskSpec{
			Name: fmt.Sprintf("worker%d", i), Class: "bag.Worker",
			Req: cn.Requirements{MemoryMB: 100, RunModel: cn.RunAsThreadInTM},
		}
	}
	placements, err := job.CreateTasks(specs, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}

	// Seed the bag: one ("range", lo, hi) tuple per chunk.
	space := job.Space()
	pending := make(map[int]int) // lo -> hi, not yet counted
	for lo := 0; lo < *limit; lo += *chunk {
		hi := min(lo+*chunk, *limit)
		pending[lo] = hi
		if err := space.Out(cn.Tuple{"range", lo, hi}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("seeded %d work items for %d workers on %d nodes\n", len(pending), *workers, *nodes)

	if *kill {
		// Cut a worker-hosting node (never the JobManager's — it hosts the
		// space) while workers are mid-steal.
		for _, node := range placements {
			if node != job.JMNode {
				time.Sleep(30 * time.Millisecond)
				if err := cluster.KillNode(node); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("killed %s mid-run; recovery re-places its workers\n", node)
				break
			}
		}
	}

	// Collect counts. A chunk taken by a worker that died before answering
	// is re-seeded after a quiet period — the worker side is idempotent, so
	// a duplicate answer is simply skipped.
	total := 0
	for len(pending) > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		t, err := space.In(ctx, cn.Template{"count", cn.TypeOf(0), cn.TypeOf(0)})
		cancel()
		if err != nil {
			fmt.Printf("re-seeding %d unanswered items\n", len(pending))
			for lo, hi := range pending {
				if err := space.Out(cn.Tuple{"range", lo, hi}); err != nil {
					log.Fatal(err)
				}
			}
			continue
		}
		lo, n := t[1].(int), t[2].(int)
		if _, open := pending[lo]; !open {
			continue // duplicate answer for a re-seeded chunk
		}
		delete(pending, lo)
		total += n
	}

	// Poison the pool so the workers — and with them the job — terminate.
	for i := 0; i < *workers; i++ {
		if err := space.Out(cn.Tuple{"range", -1, -1}); err != nil {
			log.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := job.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d primes below %d (job failed=%v, retries=%d)\n",
		total, *limit, res.Failed, job.Progress().Retried)
}
