// Modelpipeline demonstrates the paper's Figure 6 transformation chain on
// the transitive-closure model: build the UML activity model, export it as
// XMI, transform XMI to a CNX descriptor (XMI2CNX), generate a Go client
// program (CNX2Go), and finally execute the descriptor on a live cluster.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"cn"
)

func main() {
	var workers = flag.Int("workers", 3, "worker count in the model")
	flag.Parse()

	// Stage 1: the UML activity model — splitter, fork, workers, join
	// pseudostates, joiner — built with the fluent builder (the stand-in
	// for drawing the diagram in a modeling tool).
	tags := func(name string) cn.TaggedValues {
		return cn.TaskTags("demo.jar", "demo.Echo", 100, "RUN_AS_THREAD_IN_TM")
	}
	b := cn.NewActivity("demo").
		Initial("initial").
		Action("split", tags("split")).
		Fork("fork")
	var names []string
	for i := 1; i <= *workers; i++ {
		name := fmt.Sprintf("w%d", i)
		names = append(names, name)
		b.Action(name, tags(name))
	}
	g := b.Join("joinbar").
		Action("join", tags("join")).
		Final("final").
		Flows("initial", "split", "fork").
		FanOut("fork", names...).
		FanIn("joinbar", names...).
		Flows("joinbar", "join", "final").
		MustBuild()
	model := cn.NewClientModel("DemoClient")
	if err := model.AddJob(g); err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Stage 1: activity model (DOT) ===")
	fmt.Println(cn.ActivityDOT(g))

	// Stage 2: export the model as XMI (what the modeling tool would do).
	xdoc, err := cn.ModelToXMI(model)
	if err != nil {
		log.Fatal(err)
	}
	xmlText, err := xdoc.WriteString()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Stage 2: XMI export (%d bytes) ===\n", len(xmlText))

	// Stage 3: XMI2CNX.
	var cnxText strings.Builder
	if err := cn.XMI2CNX(strings.NewReader(xmlText), &cnxText, cn.TransformOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Stage 3: CNX descriptor ===")
	fmt.Println(cnxText.String())

	// Stage 4: CNX2Go.
	doc, err := cn.ParseCNX(strings.NewReader(cnxText.String()))
	if err != nil {
		log.Fatal(err)
	}
	src, err := cn.GenerateClient(doc, cn.GenerateOptions{Source: "demo.xmi"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Stage 4: generated Go client (%d bytes, first lines) ===\n", len(src))
	lines := strings.SplitN(string(src), "\n", 12)
	fmt.Println(strings.Join(lines[:11], "\n"))
	fmt.Println("...")

	// Stages 5-6: deploy and execute on a live cluster.
	registry := cn.NewRegistry()
	registry.MustRegister("demo.Echo", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			return ctx.SendClient([]byte(ctx.TaskName()))
		})
	})
	cluster, err := cn.StartCluster(cn.ClusterOptions{Nodes: 3, Registry: registry})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := cn.Connect(cluster, cn.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := cn.RunDescriptor(ctx, client, doc, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Stages 5-6: execution ===")
	for name, res := range results {
		fmt.Printf("job %s: failed=%v (id %s)\n", name, res.Failed, res.JobID)
	}
}
