// Pipeline chains transform stages as dependent CN tasks: each stage
// starts only after its predecessor completes, and each stage's output
// travels over the direct task-to-task data plane (ctx.Put/ctx.Get) — the
// successor pulls it straight from the producing node — demonstrating CN's
// sequential composition alongside a matrix-multiply demonstration of
// data-parallel composition in the same program.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cn"
	"cn/internal/workloads"
)

func main() {
	registry := cn.NewRegistry()
	workloads.MustRegister(registry)

	cluster, err := cn.StartCluster(cn.ClusterOptions{Nodes: 3, Registry: registry})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := cn.Connect(cluster, cn.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Sequential composition: a four-stage string pipeline.
	ops := []string{workloads.StageTrim, workloads.StageUpper, workloads.StageReverse, workloads.StagePrefix}
	input := "   computational neighborhood   "
	out, err := workloads.RunPipeline(ctx, client, input, ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline %v\n  %q -> %q\n", ops, input, out)

	// Data-parallel composition: block matrix multiply across 4 workers.
	a := workloads.RandomDense(32, 24, 7)
	b := workloads.RandomDense(24, 16, 8)
	c, err := workloads.RunMatMul(ctx, client, a, b, 4)
	if err != nil {
		log.Fatal(err)
	}
	want, err := workloads.MatMulSeq(a, b)
	if err != nil {
		log.Fatal(err)
	}
	if !c.Equal(want) {
		log.Fatal("cluster matmul differs from sequential")
	}
	fmt.Printf("matmul: C = A(32x24) x B(24x16) over 4 workers, verified; C[0,0]=%d\n", c.At(0, 0))

	// Embarrassingly parallel composition: Monte-Carlo pi.
	pi, err := workloads.RunMonteCarloPi(ctx, client, 4, 250_000, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monte carlo: pi ~= %.5f from 1M samples over 4 workers\n", pi)
}
