// Dynamic demonstrates the paper's Figure 5: a dynamic-invocation action
// state whose concurrent invocation count is left open until run time and
// then determined by a run-time argument expression — here, simulated
// system load. The worker pool coordinates through the job's tuple space:
// the client seeds one ("work", i) tuple per invocation, each worker
// steals one, and results come back as ("result", i, node) tuples — no
// point-to-point messages anywhere.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"cn"
)

func main() {
	var load = flag.Int("load", 2, "simulated load factor: the run-time expression spawns 8/load workers")
	flag.Parse()
	if *load < 1 {
		*load = 1
	}

	registry := cn.NewRegistry()
	registry.MustRegister("dyn.Worker", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			// Steal one work item from the job's tuple space and answer in
			// kind; the client never addresses this worker directly.
			t, err := ctx.In(cn.Template{"work", cn.TypeOf(0)})
			if err != nil {
				return err
			}
			idx := t[1].(int)
			if err := ctx.Out(cn.Tuple{"result", idx, ctx.NodeName()}); err != nil {
				return err
			}
			// Park on the stop signal so the job — and with it the space —
			// stays alive until the client drained every result. Rd is
			// non-destructive: one ("stop") tuple wakes the whole pool.
			_, err = ctx.Rd(cn.Template{"stop"})
			return err
		})
	})

	// The Figure 5 model: one dynamic action state with multiplicity "*".
	g, err := cn.NewActivity("dynjob").
		Initial("initial").
		DynamicAction("worker",
			cn.TaskTags("dyn.jar", "dyn.Worker", 100, "RUN_AS_THREAD_IN_TM"),
			"*", "byLoad").
		Final("final").
		Flows("initial", "worker", "final").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	model := cn.NewClientModel("DynamicDemo")
	if err := model.AddJob(g); err != nil {
		log.Fatal(err)
	}

	// "dependent on system load or other external factors": the provider
	// evaluates the expression at run time.
	workers := 8 / *load
	if workers < 1 {
		workers = 1
	}
	fmt.Printf("run-time expression byLoad -> %d invocations (load=%d)\n", workers, *load)

	cluster, err := cn.StartCluster(cn.ClusterOptions{Nodes: 3, Registry: registry})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := cn.Connect(cluster, cn.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	doc, err := cn.ModelToCNX(model, cn.TransformOptions{Args: cn.FixedArgs(workers)})
	if err != nil {
		log.Fatal(err)
	}
	specs, err := doc.Client.Jobs[0].Specs()
	if err != nil {
		log.Fatal(err)
	}
	job, err := client.CreateJob("dynjob", cn.JobRequirements{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := job.CreateTasks(specs, nil); err != nil {
		log.Fatal(err)
	}
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}

	// Seed one work item per invocation, then collect the results from the
	// same space the workers coordinate through.
	space := job.Space()
	for i := 0; i < workers; i++ {
		if err := space.Out(cn.Tuple{"work", i}); err != nil {
			log.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < workers; i++ {
		t, err := space.In(ctx, cn.Template{"result", i, cn.TypeOf("")})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  work item %d done on %s\n", i, t[2])
	}
	// One stop tuple releases every worker's blocked Rd.
	if err := space.Out(cn.Tuple{"stop"}); err != nil {
		log.Fatal(err)
	}
	res, err := job.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job finished (failed=%v)\n", res.Failed)
}
