// Dynamic demonstrates the paper's Figure 5: a dynamic-invocation action
// state whose concurrent invocation count is left open until run time and
// then determined by a run-time argument expression — here, simulated
// system load.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"cn"
)

func main() {
	var load = flag.Int("load", 2, "simulated load factor: the run-time expression spawns 8/load workers")
	flag.Parse()
	if *load < 1 {
		*load = 1
	}

	registry := cn.NewRegistry()
	registry.MustRegister("dyn.Worker", func() cn.Task {
		return cn.TaskFunc(func(ctx cn.TaskContext) error {
			idx, err := ctx.Params()[0].Int()
			if err != nil {
				return err
			}
			return ctx.SendClient([]byte(fmt.Sprintf("worker invocation %d on %s", idx, ctx.NodeName())))
		})
	})

	// The Figure 5 model: one dynamic action state with multiplicity "*".
	g, err := cn.NewActivity("dynjob").
		Initial("initial").
		DynamicAction("worker",
			cn.TaskTags("dyn.jar", "dyn.Worker", 100, "RUN_AS_THREAD_IN_TM"),
			"*", "byLoad").
		Final("final").
		Flows("initial", "worker", "final").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	model := cn.NewClientModel("DynamicDemo")
	if err := model.AddJob(g); err != nil {
		log.Fatal(err)
	}

	// "dependent on system load or other external factors": the provider
	// evaluates the expression at run time.
	workers := 8 / *load
	if workers < 1 {
		workers = 1
	}
	fmt.Printf("run-time expression byLoad -> %d invocations (load=%d)\n", workers, *load)

	cluster, err := cn.StartCluster(cn.ClusterOptions{Nodes: 3, Registry: registry})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := cn.Connect(cluster, cn.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	doc, err := cn.ModelToCNX(model, cn.TransformOptions{Args: cn.FixedArgs(workers)})
	if err != nil {
		log.Fatal(err)
	}
	specs, err := doc.Client.Jobs[0].Specs()
	if err != nil {
		log.Fatal(err)
	}
	job, err := client.CreateJob("dynjob", cn.JobRequirements{})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range specs {
		if err := job.CreateTask(s, nil); err != nil {
			log.Fatal(err)
		}
	}
	if err := job.Start(); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < workers; i++ {
		_, data, err := job.GetMessage(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", data)
	}
	res, err := job.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job finished (failed=%v)\n", res.Failed)
}
